//! The node-to-node control protocol.
//!
//! Every frame a cluster connection carries is one [`NetMsg`]:
//! `[u32 MAGIC][u8 PROTO_VERSION][u8 tag][fields]`, integers
//! little-endian, built on the same cursor primitives as the runtime's
//! wire codec (`em2_rt::wire`) so every decoder fails with the same
//! typed errors and never panics. A [`NetMsg::Shard`] embeds a full
//! [`WireMsg`] (which carries its own version byte) — the transport
//! layer is a dumb router for those; everything else is membership,
//! barriers, and completion accounting (see the node lifecycle state
//! machine in DESIGN.md §9).

use em2_model::bytes::CodecError;
use em2_rt::wire::{put_u32, put_u64, Cursor, WireError, WireMsg};

/// First four bytes of every frame: `"EM2N"`.
pub const MAGIC: [u8; 4] = *b"EM2N";

/// Control-protocol version; the handshake refuses mismatches.
pub const PROTO_VERSION: u8 = 1;

/// One node-to-node control message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetMsg {
    /// Connector → acceptor, first frame on a connection: identify and
    /// prove both ends run the same cluster topology and wire format.
    Hello {
        /// The dialing node's id.
        node: u32,
        /// The dialer's `em2_rt::wire::WIRE_VERSION`.
        wire_version: u8,
        /// FNV-1a digest of the dialer's `ClusterSpec`.
        topology: u64,
    },
    /// Acceptor → connector: handshake accepted.
    HelloAck {
        /// The accepting node's id.
        node: u32,
        /// The acceptor's topology digest (must match the dialer's).
        topology: u64,
    },
    /// An inter-shard runtime message for global shard `to`.
    Shard {
        /// Destination shard (global id, owned by the receiving node).
        to: u32,
        /// The runtime message.
        msg: WireMsg,
    },
    /// A task parked at barrier `k` on the sending node
    /// (node → coordinator).
    BarrierArrive {
        /// Barrier index.
        k: u32,
    },
    /// Barrier `k` met its cluster-wide quota
    /// (coordinator → everyone).
    BarrierRelease {
        /// Barrier index.
        k: u32,
    },
    /// The sending node closed admission after submitting `submitted`
    /// tasks (node → coordinator).
    Closed {
        /// Tasks the node submitted over its lifetime.
        submitted: u64,
    },
    /// One task retired on the sending node (node → coordinator).
    Retired,
    /// Every node closed and every task retired: stop
    /// (coordinator → everyone).
    Quiesce,
}

impl NetMsg {
    /// Encode as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(16);
        b.extend_from_slice(&MAGIC);
        b.push(PROTO_VERSION);
        match self {
            NetMsg::Hello {
                node,
                wire_version,
                topology,
            } => {
                b.push(0);
                put_u32(&mut b, *node);
                b.push(*wire_version);
                put_u64(&mut b, *topology);
            }
            NetMsg::HelloAck { node, topology } => {
                b.push(1);
                put_u32(&mut b, *node);
                put_u64(&mut b, *topology);
            }
            NetMsg::Shard { to, msg } => {
                b.push(2);
                put_u32(&mut b, *to);
                msg.encode_into(&mut b);
            }
            NetMsg::BarrierArrive { k } => {
                b.push(3);
                put_u32(&mut b, *k);
            }
            NetMsg::BarrierRelease { k } => {
                b.push(4);
                put_u32(&mut b, *k);
            }
            NetMsg::Closed { submitted } => {
                b.push(5);
                put_u64(&mut b, *submitted);
            }
            NetMsg::Retired => b.push(6),
            NetMsg::Quiesce => b.push(7),
        }
        b
    }

    /// Decode a frame payload. Never panics; malformed input is a
    /// typed [`WireError`].
    pub fn decode(bytes: &[u8]) -> Result<NetMsg, WireError> {
        let mut r = Cursor::new(bytes);
        for (i, want) in MAGIC.iter().enumerate() {
            let got = r.u8()?;
            if got != *want {
                return Err(CodecError::BadTag {
                    what: match i {
                        0 => "magic[0]",
                        1 => "magic[1]",
                        2 => "magic[2]",
                        _ => "magic[3]",
                    },
                    tag: got,
                }
                .into());
            }
        }
        let ver = r.u8()?;
        if ver != PROTO_VERSION {
            return Err(WireError::Version {
                got: ver,
                want: PROTO_VERSION,
            });
        }
        let msg = match r.u8()? {
            0 => NetMsg::Hello {
                node: r.u32()?,
                wire_version: r.u8()?,
                topology: r.u64()?,
            },
            1 => NetMsg::HelloAck {
                node: r.u32()?,
                topology: r.u64()?,
            },
            2 => {
                let to = r.u32()?;
                // The embedded WireMsg consumes the rest of the frame.
                return Ok(NetMsg::Shard {
                    to,
                    msg: WireMsg::decode(r.rest())?,
                });
            }
            3 => NetMsg::BarrierArrive { k: r.u32()? },
            4 => NetMsg::BarrierRelease { k: r.u32()? },
            5 => NetMsg::Closed {
                submitted: r.u64()?,
            },
            6 => NetMsg::Retired,
            7 => NetMsg::Quiesce,
            tag => {
                return Err(CodecError::BadTag {
                    what: "net-msg",
                    tag,
                }
                .into())
            }
        };
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em2_rt::wire::WIRE_VERSION;

    fn variants() -> Vec<NetMsg> {
        vec![
            NetMsg::Hello {
                node: 3,
                wire_version: WIRE_VERSION,
                topology: 0xDEAD_BEEF_CAFE_F00D,
            },
            NetMsg::HelloAck {
                node: 0,
                topology: 42,
            },
            NetMsg::Shard {
                to: 17,
                msg: WireMsg::Request {
                    addr: 8,
                    write: Some(9),
                    reply_shard: 1,
                    token: 2,
                },
            },
            NetMsg::BarrierArrive { k: 5 },
            NetMsg::BarrierRelease { k: 5 },
            NetMsg::Closed { submitted: 1000 },
            NetMsg::Retired,
            NetMsg::Quiesce,
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for m in variants() {
            let bytes = m.encode();
            assert_eq!(&bytes[..4], &MAGIC);
            assert_eq!(NetMsg::decode(&bytes).expect("round trip"), m);
        }
    }

    #[test]
    fn truncations_and_garbage_are_typed_errors() {
        for m in variants() {
            let full = m.encode();
            for cut in 0..full.len() {
                assert!(NetMsg::decode(&full[..cut]).is_err(), "cut {cut}");
            }
        }
        assert!(NetMsg::decode(b"XXXXXXXX").is_err());
        let mut wrong_ver = NetMsg::Quiesce.encode();
        wrong_ver[4] = PROTO_VERSION + 1;
        assert!(matches!(
            NetMsg::decode(&wrong_ver),
            Err(WireError::Version { .. })
        ));
        let mut trailing = NetMsg::Quiesce.encode();
        trailing.push(1);
        assert!(matches!(
            NetMsg::decode(&trailing),
            Err(WireError::Codec(CodecError::Trailing { .. }))
        ));
    }
}
