//! The node-to-node control protocol.
//!
//! Every frame a cluster connection carries is one [`NetMsg`]:
//! `[u32 MAGIC][u8 PROTO_VERSION][u64 seq][u32 check][u8 tag][fields]`,
//! integers little-endian, built on the same cursor primitives as the
//! runtime's wire codec (`em2_rt::wire`) so every decoder fails with
//! the same typed errors and never panics. Two header fields exist
//! purely for failure detection (DESIGN.md §10):
//!
//! * **`seq`** — a per-connection, per-direction frame counter
//!   starting at 0 with the handshake frame. The receiver drops any
//!   frame whose sequence it has already consumed (a *duplicate* is
//!   invisible to the runtime, which is what keeps the E12 bit-equal
//!   sum intact under duplicate faults) and treats a forward jump as
//!   proof of frame loss — a typed error the moment the *next* frame
//!   (or an idle heartbeat) lands, instead of a silent stall.
//! * **`check`** — FNV-1a over `seq ++ tag ++ fields`, truncated to
//!   32 bits. A flipped bit anywhere in the payload fails the
//!   checksum even when the mutated bytes would still parse, so
//!   corruption can never masquerade as a valid (wrong) message.
//!
//! A [`NetMsg::Shard`] embeds a full [`WireMsg`] (which carries its
//! own version byte) — the transport layer is a dumb router for
//! those; everything else is membership, barriers, completion
//! accounting, and the failure-control plane ([`NetMsg::Heartbeat`],
//! [`NetMsg::Abort`], [`NetMsg::Bye`]) — see the node lifecycle state
//! machine in DESIGN.md §9–§10.

use em2_model::bytes::CodecError;
use em2_rt::wire::{put_bytes, put_u32, put_u64, Cursor, FrozenShard, WireError, WireMsg};

/// First four bytes of every frame: `"EM2N"`.
pub const MAGIC: [u8; 4] = *b"EM2N";

/// Control-protocol version; the handshake refuses mismatches.
/// Version 2 added the sequence/checksum header and the
/// failure-control messages (`Heartbeat`/`Abort`/`Bye`). Version 3
/// stamps every `Shard` frame with the sender's directory epoch and a
/// bounce budget, and adds the live-handoff family
/// (`HandoffRequest`…`EpochUpdate`, `Bounce`).
pub const PROTO_VERSION: u8 = 3;

/// One node-to-node control message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetMsg {
    /// Connector → acceptor, first frame on a connection: identify and
    /// prove both ends run the same cluster topology and wire format.
    Hello {
        /// The dialing node's id.
        node: u32,
        /// The dialer's `em2_rt::wire::WIRE_VERSION`.
        wire_version: u8,
        /// FNV-1a digest of the dialer's `ClusterSpec`.
        topology: u64,
    },
    /// Acceptor → connector: handshake accepted.
    HelloAck {
        /// The accepting node's id.
        node: u32,
        /// The acceptor's topology digest (must match the dialer's).
        topology: u64,
    },
    /// An inter-shard runtime message for global shard `to`.
    Shard {
        /// Destination shard (global id; the receiver re-checks
        /// ownership against its live directory, not the static spec).
        to: u32,
        /// The sender's directory epoch when it routed the frame —
        /// never newer than the map that chose the route (the sender
        /// reads the epoch first; installs publish owners first). A
        /// receiver that neither owns nor expects `to` uses it to
        /// decide who is stale: a stamp at or behind its map means
        /// the sender routed by an old world (bounce the frame back
        /// for re-route); a stamp ahead of its map proves a commit
        /// the receiver has not installed yet, so it parks the frame
        /// and re-routes when that `EpochUpdate` lands.
        epoch: u64,
        /// How many times ownership movement has already re-routed
        /// this frame; capped by `EM2_NET_BOUNCE_RETRIES`.
        retries: u32,
        /// The runtime message.
        msg: WireMsg,
    },
    /// A task parked at barrier `k` on the sending node
    /// (node → coordinator).
    BarrierArrive {
        /// Barrier index.
        k: u32,
    },
    /// Barrier `k` met its cluster-wide quota
    /// (coordinator → everyone).
    BarrierRelease {
        /// Barrier index.
        k: u32,
    },
    /// The sending node closed admission after submitting `submitted`
    /// tasks (node → coordinator).
    Closed {
        /// Tasks the node submitted over its lifetime.
        submitted: u64,
    },
    /// One task retired on the sending node (node → coordinator).
    Retired,
    /// Every node closed and every task retired: stop
    /// (coordinator → everyone).
    Quiesce,
    /// Idle-connection keep-alive. Carries no payload and is excluded
    /// from wire telemetry; its job is to advance the sequence stream
    /// (exposing dropped frames) and refresh the peer's liveness
    /// clock in bounded time.
    Heartbeat,
    /// The sender's run failed; every receiver records the reason and
    /// shuts its local workers down (node → coordinator, then
    /// coordinator → everyone).
    Abort {
        /// Rendered `ClusterError` of the originating failure.
        reason: String,
    },
    /// Orderly goodbye, sent immediately before a clean close. An EOF
    /// *without* a preceding `Bye` is a peer loss, not a shutdown —
    /// this is what separates a severed connection from a finished
    /// node without racing the quiesce broadcast.
    Bye,
    /// Ask the coordinator to re-home a shard (any node →
    /// coordinator). The coordinator serializes requests into its
    /// handoff ledger and drives the four-phase protocol.
    HandoffRequest {
        /// Shard to move.
        shard: u32,
        /// Node that should own it afterwards.
        to: u32,
    },
    /// Phase 1, coordinator → current owner: freeze `shard` and ship
    /// its state to node `to`.
    HandoffPrepare {
        /// Ledger id of the handoff (unique per coordinator lifetime).
        hid: u64,
        /// Shard to freeze.
        shard: u32,
        /// Destination node.
        to: u32,
        /// Directory epoch the handoff departs from.
        epoch: u64,
    },
    /// Phase 1, coordinator → destination: state for `shard` is about
    /// to arrive from node `from`; buffer any early-routed frames for
    /// it instead of bouncing them.
    HandoffExpect {
        /// Ledger id.
        hid: u64,
        /// Shard in transit.
        shard: u32,
        /// Source node.
        from: u32,
        /// Directory epoch the handoff departs from.
        epoch: u64,
    },
    /// Phase 2, source → destination: the frozen shard state itself.
    HandoffTransfer {
        /// Ledger id.
        hid: u64,
        /// Shard being re-homed (mirrors `state.shard`).
        shard: u32,
        /// The complete transferable state (boxed: it dwarfs every
        /// other variant, and transfers are rare).
        state: Box<FrozenShard>,
    },
    /// Phase 3, destination → coordinator: the shard is installed and
    /// running here.
    HandoffDone {
        /// Ledger id.
        hid: u64,
        /// Shard now owned by the sender.
        shard: u32,
    },
    /// Phase 4, coordinator → everyone: the new ownership map, sealed
    /// under a bumped epoch. Receivers install it and re-route any
    /// frames they parked while ownership was ambiguous.
    EpochUpdate {
        /// The new (strictly increasing) directory epoch.
        epoch: u64,
        /// Owner node of every global shard, indexed by shard id.
        owners: Vec<u32>,
    },
    /// An epoch-fenced frame returned to its sender: the receiver no
    /// longer owned shard `to` and had no buffer open for it. The
    /// sender parks the frame until the next `EpochUpdate` when the
    /// bounce proves one is still in flight (see `epoch`), and
    /// re-routes via its own directory otherwise.
    Bounce {
        /// The shard the original frame targeted.
        to: u32,
        /// The refusing node's directory epoch at refusal, read next
        /// to its ownership check. The sender parks the frame only
        /// when this proves a future `EpochUpdate` will drain it:
        /// either the stamp is ahead of the sender's map (the sender
        /// is behind; the catch-up broadcast is in flight), or it is
        /// equal while the sender's map names the bouncing node (the
        /// refusal can then only come from an uncommitted freeze, so
        /// a commit is pending). Anything else — in particular a
        /// bounce older than the sender's map — re-routes instead: a
        /// shard can return to a previous owner, so "my map still
        /// names the bouncer" alone proves nothing about the future.
        epoch: u64,
        /// Re-routes already consumed (the receiver increments before
        /// forwarding; exceeding `EM2_NET_BOUNCE_RETRIES` fails typed).
        retries: u32,
        /// The original runtime message, unmodified.
        msg: WireMsg,
    },
}

/// FNV-1a over `seq ++ body`, truncated to 32 bits — the frame
/// integrity check.
fn frame_check(seq: u64, body: &[u8]) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&seq.to_le_bytes());
    eat(body);
    (h ^ (h >> 32)) as u32
}

impl NetMsg {
    /// Encode as a frame payload carrying sequence number `seq`.
    pub fn encode(&self, seq: u64) -> Vec<u8> {
        let mut body = Vec::with_capacity(16);
        match self {
            NetMsg::Hello {
                node,
                wire_version,
                topology,
            } => {
                body.push(0);
                put_u32(&mut body, *node);
                body.push(*wire_version);
                put_u64(&mut body, *topology);
            }
            NetMsg::HelloAck { node, topology } => {
                body.push(1);
                put_u32(&mut body, *node);
                put_u64(&mut body, *topology);
            }
            NetMsg::Shard {
                to,
                epoch,
                retries,
                msg,
            } => {
                body.push(2);
                put_u32(&mut body, *to);
                put_u64(&mut body, *epoch);
                put_u32(&mut body, *retries);
                msg.encode_into(&mut body);
            }
            NetMsg::BarrierArrive { k } => {
                body.push(3);
                put_u32(&mut body, *k);
            }
            NetMsg::BarrierRelease { k } => {
                body.push(4);
                put_u32(&mut body, *k);
            }
            NetMsg::Closed { submitted } => {
                body.push(5);
                put_u64(&mut body, *submitted);
            }
            NetMsg::Retired => body.push(6),
            NetMsg::Quiesce => body.push(7),
            NetMsg::Heartbeat => body.push(8),
            NetMsg::Abort { reason } => {
                body.push(9);
                put_bytes(&mut body, reason.as_bytes());
            }
            NetMsg::Bye => body.push(10),
            NetMsg::HandoffRequest { shard, to } => {
                body.push(11);
                put_u32(&mut body, *shard);
                put_u32(&mut body, *to);
            }
            NetMsg::HandoffPrepare {
                hid,
                shard,
                to,
                epoch,
            } => {
                body.push(12);
                put_u64(&mut body, *hid);
                put_u32(&mut body, *shard);
                put_u32(&mut body, *to);
                put_u64(&mut body, *epoch);
            }
            NetMsg::HandoffExpect {
                hid,
                shard,
                from,
                epoch,
            } => {
                body.push(13);
                put_u64(&mut body, *hid);
                put_u32(&mut body, *shard);
                put_u32(&mut body, *from);
                put_u64(&mut body, *epoch);
            }
            NetMsg::HandoffTransfer { hid, shard, state } => {
                body.push(14);
                put_u64(&mut body, *hid);
                put_u32(&mut body, *shard);
                state.encode_into(&mut body);
            }
            NetMsg::HandoffDone { hid, shard } => {
                body.push(15);
                put_u64(&mut body, *hid);
                put_u32(&mut body, *shard);
            }
            NetMsg::EpochUpdate { epoch, owners } => {
                body.push(16);
                put_u64(&mut body, *epoch);
                put_u32(&mut body, owners.len() as u32);
                for &o in owners {
                    put_u32(&mut body, o);
                }
            }
            NetMsg::Bounce {
                to,
                epoch,
                retries,
                msg,
            } => {
                body.push(17);
                put_u32(&mut body, *to);
                put_u64(&mut body, *epoch);
                put_u32(&mut body, *retries);
                msg.encode_into(&mut body);
            }
        }
        let mut b = Vec::with_capacity(body.len() + 17);
        b.extend_from_slice(&MAGIC);
        b.push(PROTO_VERSION);
        put_u64(&mut b, seq);
        put_u32(&mut b, frame_check(seq, &body));
        b.extend_from_slice(&body);
        b
    }

    /// Decode a frame payload into `(seq, message)`. Never panics;
    /// malformed input — including any single flipped bit, caught by
    /// the checksum — is a typed [`WireError`].
    pub fn decode(bytes: &[u8]) -> Result<(u64, NetMsg), WireError> {
        let mut r = Cursor::new(bytes);
        for (i, want) in MAGIC.iter().enumerate() {
            let got = r.u8()?;
            if got != *want {
                return Err(CodecError::BadTag {
                    what: match i {
                        0 => "magic[0]",
                        1 => "magic[1]",
                        2 => "magic[2]",
                        _ => "magic[3]",
                    },
                    tag: got,
                }
                .into());
            }
        }
        let ver = r.u8()?;
        if ver != PROTO_VERSION {
            return Err(WireError::Version {
                got: ver,
                want: PROTO_VERSION,
            });
        }
        let seq = r.u64()?;
        let declared = r.u32()?;
        let body = r.rest();
        let got = frame_check(seq, body);
        if got != declared {
            return Err(CodecError::Checksum {
                got,
                want: declared,
            }
            .into());
        }
        let mut r = Cursor::new(body);
        let msg = match r.u8()? {
            0 => NetMsg::Hello {
                node: r.u32()?,
                wire_version: r.u8()?,
                topology: r.u64()?,
            },
            1 => NetMsg::HelloAck {
                node: r.u32()?,
                topology: r.u64()?,
            },
            2 => {
                let to = r.u32()?;
                let epoch = r.u64()?;
                let retries = r.u32()?;
                // The embedded WireMsg consumes the rest of the frame.
                return Ok((
                    seq,
                    NetMsg::Shard {
                        to,
                        epoch,
                        retries,
                        msg: WireMsg::decode(r.rest())?,
                    },
                ));
            }
            3 => NetMsg::BarrierArrive { k: r.u32()? },
            4 => NetMsg::BarrierRelease { k: r.u32()? },
            5 => NetMsg::Closed {
                submitted: r.u64()?,
            },
            6 => NetMsg::Retired,
            7 => NetMsg::Quiesce,
            8 => NetMsg::Heartbeat,
            9 => NetMsg::Abort {
                reason: String::from_utf8_lossy(&r.bytes()?).into_owned(),
            },
            10 => NetMsg::Bye,
            11 => NetMsg::HandoffRequest {
                shard: r.u32()?,
                to: r.u32()?,
            },
            12 => NetMsg::HandoffPrepare {
                hid: r.u64()?,
                shard: r.u32()?,
                to: r.u32()?,
                epoch: r.u64()?,
            },
            13 => NetMsg::HandoffExpect {
                hid: r.u64()?,
                shard: r.u32()?,
                from: r.u32()?,
                epoch: r.u64()?,
            },
            14 => {
                let hid = r.u64()?;
                let shard = r.u32()?;
                // The frozen state consumes the rest of the frame.
                return Ok((
                    seq,
                    NetMsg::HandoffTransfer {
                        hid,
                        shard,
                        state: Box::new(FrozenShard::decode(r.rest())?),
                    },
                ));
            }
            15 => NetMsg::HandoffDone {
                hid: r.u64()?,
                shard: r.u32()?,
            },
            16 => {
                let epoch = r.u64()?;
                let n = r.u32()?;
                let mut owners = Vec::new();
                for _ in 0..n {
                    owners.push(r.u32()?);
                }
                NetMsg::EpochUpdate { epoch, owners }
            }
            17 => {
                let to = r.u32()?;
                let epoch = r.u64()?;
                let retries = r.u32()?;
                // The embedded WireMsg consumes the rest of the frame.
                return Ok((
                    seq,
                    NetMsg::Bounce {
                        to,
                        epoch,
                        retries,
                        msg: WireMsg::decode(r.rest())?,
                    },
                ));
            }
            tag => {
                return Err(CodecError::BadTag {
                    what: "net-msg",
                    tag,
                }
                .into())
            }
        };
        r.finish()?;
        Ok((seq, msg))
    }

    /// Whether this message is failure-control or membership plumbing
    /// (heartbeats, aborts, goodbyes, the handoff family) rather than
    /// run traffic. Control frames are excluded from wire telemetry so
    /// fault-free counters stay exactly reproducible whether or not
    /// heartbeats are enabled — and so a run with live handoffs keeps
    /// telemetry comparable to one without.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            NetMsg::Heartbeat
                | NetMsg::Abort { .. }
                | NetMsg::Bye
                | NetMsg::HandoffRequest { .. }
                | NetMsg::HandoffPrepare { .. }
                | NetMsg::HandoffExpect { .. }
                | NetMsg::HandoffTransfer { .. }
                | NetMsg::HandoffDone { .. }
                | NetMsg::EpochUpdate { .. }
                | NetMsg::Bounce { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em2_rt::wire::WIRE_VERSION;

    fn variants() -> Vec<NetMsg> {
        vec![
            NetMsg::Hello {
                node: 3,
                wire_version: WIRE_VERSION,
                topology: 0xDEAD_BEEF_CAFE_F00D,
            },
            NetMsg::HelloAck {
                node: 0,
                topology: 42,
            },
            NetMsg::Shard {
                to: 17,
                epoch: 4,
                retries: 1,
                msg: WireMsg::Request {
                    addr: 8,
                    write: Some(9),
                    reply_shard: 1,
                    token: 2,
                },
            },
            NetMsg::BarrierArrive { k: 5 },
            NetMsg::BarrierRelease { k: 5 },
            NetMsg::Closed { submitted: 1000 },
            NetMsg::Retired,
            NetMsg::Quiesce,
            NetMsg::Heartbeat,
            NetMsg::Abort {
                reason: "lost peer node 1: connection severed".into(),
            },
            NetMsg::Bye,
            NetMsg::HandoffRequest { shard: 6, to: 1 },
            NetMsg::HandoffPrepare {
                hid: 3,
                shard: 6,
                to: 1,
                epoch: 4,
            },
            NetMsg::HandoffExpect {
                hid: 3,
                shard: 6,
                from: 0,
                epoch: 4,
            },
            NetMsg::HandoffTransfer {
                hid: 3,
                shard: 6,
                state: Box::new(FrozenShard {
                    shard: 6,
                    next_token: 11,
                    clock: 7,
                    heap: vec![(0, 42), (8, 9)],
                    natives: vec![2],
                    guests: vec![(5, true, 3)],
                    runq: vec![],
                    parked: vec![],
                    awaiting: vec![],
                    stalled: vec![],
                    mailbox: vec![WireMsg::Response {
                        token: 1,
                        value: Some(2),
                    }],
                }),
            },
            NetMsg::HandoffDone { hid: 3, shard: 6 },
            NetMsg::EpochUpdate {
                epoch: 5,
                owners: vec![0, 0, 1, 1, 1, 0, 1, 1],
            },
            NetMsg::Bounce {
                to: 6,
                epoch: 4,
                retries: 2,
                msg: WireMsg::Response {
                    token: 9,
                    value: None,
                },
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_with_its_sequence() {
        for (i, m) in variants().into_iter().enumerate() {
            let seq = (i as u64) * 1_000_003;
            let bytes = m.encode(seq);
            assert_eq!(&bytes[..4], &MAGIC);
            let (got_seq, got) = NetMsg::decode(&bytes).expect("round trip");
            assert_eq!(got_seq, seq);
            assert_eq!(got, m);
        }
    }

    #[test]
    fn truncations_and_garbage_are_typed_errors() {
        for m in variants() {
            let full = m.encode(7);
            for cut in 0..full.len() {
                assert!(NetMsg::decode(&full[..cut]).is_err(), "cut {cut}");
            }
        }
        assert!(NetMsg::decode(b"XXXXXXXXXXXXXXXXXXXX").is_err());
        let mut wrong_ver = NetMsg::Quiesce.encode(0);
        wrong_ver[4] = PROTO_VERSION + 1;
        assert!(matches!(
            NetMsg::decode(&wrong_ver),
            Err(WireError::Version { .. })
        ));
        let mut trailing = NetMsg::Quiesce.encode(0);
        trailing.push(1);
        // Appended bytes change the checksum before the tail decoder
        // ever sees them.
        assert!(NetMsg::decode(&trailing).is_err());
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        // The checksum closes the "corruption that still parses" hole:
        // no one-bit mutation of any frame may decode as a different
        // valid message.
        for m in variants() {
            let full = m.encode(3);
            for byte in 0..full.len() {
                for bit in 0..8 {
                    let mut mutated = full.clone();
                    mutated[byte] ^= 1 << bit;
                    match NetMsg::decode(&mutated) {
                        Err(_) => {}
                        Ok((seq, got)) => {
                            assert!(
                                seq == 3 && got == m,
                                "bit flip at {byte}.{bit} decoded as a different message"
                            );
                            unreachable!("a flipped bit cannot reproduce the original frame");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn sequence_is_authenticated_by_the_checksum() {
        // Tampering with the sequence header alone must fail: replayed
        // frames cannot be "renumbered" into the expected slot.
        let mut b = NetMsg::Retired.encode(9);
        b[5] ^= 0xFF; // low byte of the seq field
        assert!(NetMsg::decode(&b).is_err());
    }
}
