//! The typed failure taxonomy for cluster runs.
//!
//! Every way a distributed run can go wrong maps to exactly one
//! [`ClusterError`] variant, and every path that used to panic or hang
//! (send failures, lost peers, stalled barriers, a quiesce that never
//! comes) now records one of these into the node's failure slot and
//! returns it from [`crate::NodeRuntime::finish`]. The taxonomy is the
//! contract the chaos harness (`crates/net/tests/chaos.rs`) checks:
//! *under any injected fault plan, every node either completes
//! bit-equal to the single-process run or returns one of these within
//! its configured deadline — never a hang, never a silently wrong
//! sum* (DESIGN.md §10).

use std::fmt;
use std::io;

/// Why a cluster run failed. Carried through the per-node failure slot
/// and returned by [`crate::NodeRuntime::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The connect/accept handshake failed: version or topology
    /// mismatch, an unexpected message, a refused accept, or a peer
    /// that went silent before completing the exchange.
    Handshake {
        /// What went wrong.
        detail: String,
    },
    /// A peer delivered bytes that do not decode as the next expected
    /// frame: corrupt or truncated payload, a bad checksum, or a
    /// sequence gap proving at least one frame was lost.
    Codec {
        /// The peer the bytes came from.
        from: usize,
        /// Decoder diagnostic.
        detail: String,
    },
    /// A peer connection died mid-run: a send or receive failed, or
    /// the connection closed without the protocol's goodbye, or the
    /// peer stopped sending for longer than the heartbeat deadline.
    PeerLost {
        /// The lost peer.
        node: usize,
        /// How the loss was detected.
        detail: String,
    },
    /// The run deadline expired with tasks still parked at a barrier —
    /// some node's arrival (or the coordinator's release) never made
    /// it across.
    BarrierTimeout {
        /// Milliseconds waited before giving up.
        waited_ms: u64,
        /// Local backlog at expiry.
        detail: String,
    },
    /// The run deadline expired before the coordinator's quiesce
    /// decision reached this node — completion accounting stalled
    /// (a lost `Retired`/`Closed`, or a dead coordinator).
    QuiesceTimeout {
        /// Milliseconds waited before giving up.
        waited_ms: u64,
        /// Local backlog at expiry.
        detail: String,
    },
    /// Dialing a peer did not produce a connection within the connect
    /// budget (`connect_timeout_ms`).
    ConnectTimeout {
        /// The address dialed.
        addr: String,
        /// Milliseconds spent retrying.
        waited_ms: u64,
        /// The last connect error.
        detail: String,
    },
    /// Another node failed first and broadcast `Abort{reason}`; this
    /// node shut down in sympathy.
    Aborted {
        /// The node that reported the failure.
        from: usize,
        /// Its rendered [`ClusterError`].
        reason: String,
    },
    /// A peer violated the control protocol: misrouted a shard
    /// message, re-sent a handshake mid-run, or sent a
    /// coordinator-only message to a non-coordinator.
    Protocol {
        /// The offending peer.
        from: usize,
        /// What it did.
        detail: String,
    },
    /// The launch configuration is invalid (bad spec, shard-count
    /// mismatch, node id out of range).
    Config {
        /// What is wrong with it.
        detail: String,
    },
    /// A live shard handoff could not complete: the coordinator's
    /// watchdog expired with a handoff stuck in one phase, a frozen
    /// shard's state failed to decode on the receiving node, or a
    /// fenced frame exhausted its bounce budget while ownership moved.
    Handoff {
        /// The phase the handoff was in (`prepare`, `freeze`,
        /// `transfer`, `commit`, or `bounce` for fencing failures).
        phase: String,
        /// What went wrong.
        detail: String,
    },
    /// An I/O error outside the categories above (listen failures,
    /// summary-file plumbing).
    Io {
        /// The rendered [`io::Error`].
        detail: String,
    },
}

impl ClusterError {
    /// Stable short name of the variant — the key the `fault_matrix`
    /// bench experiment and CI logs group detection latencies by.
    pub fn kind(&self) -> &'static str {
        match self {
            ClusterError::Handshake { .. } => "handshake",
            ClusterError::Codec { .. } => "codec",
            ClusterError::PeerLost { .. } => "peer-lost",
            ClusterError::BarrierTimeout { .. } => "barrier-timeout",
            ClusterError::QuiesceTimeout { .. } => "quiesce-timeout",
            ClusterError::ConnectTimeout { .. } => "connect-timeout",
            ClusterError::Aborted { .. } => "aborted",
            ClusterError::Protocol { .. } => "protocol",
            ClusterError::Config { .. } => "config",
            ClusterError::Handoff { .. } => "handoff",
            ClusterError::Io { .. } => "io",
        }
    }

    /// Whether this node failed in sympathy with another node's
    /// failure (an `Abort` broadcast) rather than observing the fault
    /// itself.
    pub fn is_sympathetic(&self) -> bool {
        matches!(self, ClusterError::Aborted { .. })
    }

    /// Append a note to the variant's free-text detail — used by the
    /// failure slot to stamp errors observed while a handoff was
    /// active with the handoff's phase, so a post-mortem names where
    /// the transfer died.
    pub fn annotate(mut self, note: &str) -> Self {
        let detail = match &mut self {
            ClusterError::Handshake { detail }
            | ClusterError::Codec { detail, .. }
            | ClusterError::PeerLost { detail, .. }
            | ClusterError::BarrierTimeout { detail, .. }
            | ClusterError::QuiesceTimeout { detail, .. }
            | ClusterError::ConnectTimeout { detail, .. }
            | ClusterError::Protocol { detail, .. }
            | ClusterError::Config { detail }
            | ClusterError::Handoff { detail, .. }
            | ClusterError::Io { detail } => detail,
            ClusterError::Aborted { reason, .. } => reason,
        };
        if detail.is_empty() {
            *detail = note.to_string();
        } else {
            detail.push_str("; ");
            detail.push_str(note);
        }
        self
    }
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Handshake { detail } => write!(f, "handshake failed: {detail}"),
            ClusterError::Codec { from, detail } => {
                write!(f, "bad frame from node {from}: {detail}")
            }
            ClusterError::PeerLost { node, detail } => {
                write!(f, "lost peer node {node}: {detail}")
            }
            ClusterError::BarrierTimeout { waited_ms, detail } => {
                write!(f, "barrier stalled for {waited_ms} ms: {detail}")
            }
            ClusterError::QuiesceTimeout { waited_ms, detail } => {
                write!(f, "cluster did not quiesce within {waited_ms} ms: {detail}")
            }
            ClusterError::ConnectTimeout {
                addr,
                waited_ms,
                detail,
            } => write!(
                f,
                "connect to {addr:?} timed out after {waited_ms} ms: {detail}"
            ),
            ClusterError::Aborted { from, reason } => {
                write!(f, "aborted by node {from}: {reason}")
            }
            ClusterError::Protocol { from, detail } => {
                write!(f, "protocol violation by node {from}: {detail}")
            }
            ClusterError::Config { detail } => write!(f, "invalid cluster config: {detail}"),
            ClusterError::Handoff { phase, detail } => {
                write!(f, "shard handoff failed in {phase}: {detail}")
            }
            ClusterError::Io { detail } => write!(f, "cluster i/o error: {detail}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<io::Error> for ClusterError {
    fn from(e: io::Error) -> Self {
        ClusterError::Io {
            detail: e.to_string(),
        }
    }
}

impl From<ClusterError> for io::Error {
    fn from(e: ClusterError) -> Self {
        let kind = match &e {
            ClusterError::Handshake { .. } | ClusterError::Protocol { .. } => {
                io::ErrorKind::InvalidData
            }
            ClusterError::Codec { .. } => io::ErrorKind::InvalidData,
            ClusterError::PeerLost { .. } | ClusterError::Aborted { .. } => {
                io::ErrorKind::ConnectionReset
            }
            ClusterError::BarrierTimeout { .. }
            | ClusterError::QuiesceTimeout { .. }
            | ClusterError::ConnectTimeout { .. } => io::ErrorKind::TimedOut,
            ClusterError::Config { .. } => io::ErrorKind::InvalidInput,
            ClusterError::Handoff { .. } => io::ErrorKind::TimedOut,
            ClusterError::Io { .. } => io::ErrorKind::Other,
        };
        io::Error::new(kind, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_and_stable() {
        let all = [
            ClusterError::Handshake { detail: "x".into() },
            ClusterError::Codec {
                from: 1,
                detail: "x".into(),
            },
            ClusterError::PeerLost {
                node: 1,
                detail: "x".into(),
            },
            ClusterError::BarrierTimeout {
                waited_ms: 1,
                detail: "x".into(),
            },
            ClusterError::QuiesceTimeout {
                waited_ms: 1,
                detail: "x".into(),
            },
            ClusterError::ConnectTimeout {
                addr: "a".into(),
                waited_ms: 1,
                detail: "x".into(),
            },
            ClusterError::Aborted {
                from: 1,
                reason: "x".into(),
            },
            ClusterError::Protocol {
                from: 1,
                detail: "x".into(),
            },
            ClusterError::Config { detail: "x".into() },
            ClusterError::Handoff {
                phase: "transfer".into(),
                detail: "x".into(),
            },
            ClusterError::Io { detail: "x".into() },
        ];
        let kinds: std::collections::HashSet<_> = all.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), all.len(), "every variant has a unique kind");
        for e in &all {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn io_round_trip_preserves_category() {
        let e = ClusterError::QuiesceTimeout {
            waited_ms: 250,
            detail: "2 parked".into(),
        };
        let io: io::Error = e.into();
        assert_eq!(io.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn annotate_appends_the_handoff_phase() {
        let e = ClusterError::PeerLost {
            node: 1,
            detail: "read failed".into(),
        }
        .annotate("during shard handoff (transfer)");
        assert_eq!(e.kind(), "peer-lost", "annotation keeps the kind");
        assert!(e
            .to_string()
            .contains("read failed; during shard handoff (transfer)"));
        let empty = ClusterError::Handshake {
            detail: String::new(),
        }
        .annotate("note");
        assert!(empty.to_string().ends_with("note"));
    }
}
