//! Flat, summable counter summaries — how separate processes compare
//! notes.
//!
//! A cluster's correctness claim is *"the per-node counters sum
//! bit-equal to the single-process run"*. The processes can't share an
//! address space, so each writes a [`CounterSummary`] to a file (plain
//! `key=value` text — greppable in CI artifacts) and the parent reads,
//! sums, and compares. Every field that participates in the agreement
//! claim is here, including the full run-length histogram (bins,
//! overflow, exact weighted total, max), so "bit-equal" means the
//! whole Figure-2 artifact, not a summary statistic.

use crate::node::{NetReport, WireSnapshot};
use em2_rt::RtReport;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One node's (or one run's) counters in summable form.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CounterSummary {
    /// Local accesses executed.
    pub local_accesses: u64,
    /// Migrations executed.
    pub migrations: u64,
    /// Guest evictions.
    pub evictions: u64,
    /// Stall-retried guest arrivals.
    pub stalled_arrivals: u64,
    /// Remote-access reads served.
    pub remote_reads: u64,
    /// Remote-access writes served.
    pub remote_writes: u64,
    /// Serialized context bytes charged to migrations/evictions.
    pub context_bytes_sent: u64,
    /// Distinct heap words materialized.
    pub heap_words: u64,
    /// Run-length histogram bins `0..=max_bin` (occurrence counts).
    pub hist_bins: Vec<u64>,
    /// Overflow-bin occurrences.
    pub hist_overflow: u64,
    /// Exact sum of all run lengths.
    pub hist_total_value: u128,
    /// Total runs binned.
    pub hist_total_count: u64,
    /// Longest run seen.
    pub hist_max_seen: u64,
    /// Wire telemetry (zero for single-process runs).
    pub wire: WireSnapshot,
    /// Wall-clock seconds (max, not sum, under [`CounterSummary::merge`]).
    pub wall_s: f64,
}

impl CounterSummary {
    /// Summary of a plain runtime report (no wire traffic).
    pub fn from_rt(r: &RtReport) -> Self {
        let h = &r.run_lengths;
        CounterSummary {
            local_accesses: r.flow.local_accesses,
            migrations: r.flow.migrations,
            evictions: r.flow.evictions,
            stalled_arrivals: r.flow.stalled_arrivals,
            remote_reads: r.flow.remote_reads,
            remote_writes: r.flow.remote_writes,
            context_bytes_sent: r.context_bytes_sent,
            heap_words: r.heap_words,
            hist_bins: (0..=h.max_bin()).map(|v| h.count(v)).collect(),
            hist_overflow: h.overflow(),
            hist_total_value: h.total_value(),
            hist_total_count: h.total_count(),
            hist_max_seen: h.max_seen(),
            wire: WireSnapshot::default(),
            wall_s: r.wall.as_secs_f64(),
        }
    }

    /// Summary of one cluster node's report.
    pub fn from_net(r: &NetReport) -> Self {
        CounterSummary {
            wire: r.wire,
            ..CounterSummary::from_rt(&r.rt)
        }
    }

    /// Accumulate another node's summary: counters add, histograms add
    /// bin-wise, `hist_max_seen` takes the max (matching
    /// `Histogram::merge`), wall takes the max (nodes run
    /// concurrently).
    pub fn merge(&mut self, o: &CounterSummary) {
        assert_eq!(
            self.hist_bins.len(),
            o.hist_bins.len(),
            "histogram bin layouts differ"
        );
        self.local_accesses += o.local_accesses;
        self.migrations += o.migrations;
        self.evictions += o.evictions;
        self.stalled_arrivals += o.stalled_arrivals;
        self.remote_reads += o.remote_reads;
        self.remote_writes += o.remote_writes;
        self.context_bytes_sent += o.context_bytes_sent;
        self.heap_words += o.heap_words;
        for (a, b) in self.hist_bins.iter_mut().zip(&o.hist_bins) {
            *a += b;
        }
        self.hist_overflow += o.hist_overflow;
        self.hist_total_value += o.hist_total_value;
        self.hist_total_count += o.hist_total_count;
        self.hist_max_seen = self.hist_max_seen.max(o.hist_max_seen);
        self.wire.merge(&o.wire);
        self.wall_s = self.wall_s.max(o.wall_s);
    }

    /// Sum a set of node summaries (cluster totals).
    pub fn sum(parts: impl IntoIterator<Item = CounterSummary>) -> CounterSummary {
        let mut parts = parts.into_iter();
        let mut acc = parts.next().expect("at least one summary");
        for p in parts {
            acc.merge(&p);
        }
        acc
    }

    /// Total memory operations (local + migrated + remote).
    pub fn total_ops(&self) -> u64 {
        self.local_accesses + self.migrations + self.remote_reads + self.remote_writes
    }

    /// Whether every *deterministic machine-semantic* counter equals
    /// `other`'s — the agreement predicate. Excluded on purpose: wall
    /// clock and wire telemetry (host timing; a single-process run has
    /// no wire) and `stalled_arrivals`, which counts arrivals that
    /// found all guest slots pinned — a function of real-time
    /// interleaving, not of program order, so it is not partition-
    /// invariant even in the single-process runtime (the agreement
    /// configs are eviction-free, where it is structurally zero).
    pub fn counters_equal(&self, other: &CounterSummary) -> bool {
        self.local_accesses == other.local_accesses
            && self.migrations == other.migrations
            && self.evictions == other.evictions
            && self.remote_reads == other.remote_reads
            && self.remote_writes == other.remote_writes
            && self.context_bytes_sent == other.context_bytes_sent
            && self.heap_words == other.heap_words
            && self.hist_bins == other.hist_bins
            && self.hist_overflow == other.hist_overflow
            && self.hist_total_value == other.hist_total_value
            && self.hist_total_count == other.hist_total_count
            && self.hist_max_seen == other.hist_max_seen
    }

    /// Render as `key=value` lines.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let mut kv = |k: &str, v: String| {
            let _ = writeln!(s, "{k}={v}");
        };
        kv("local_accesses", self.local_accesses.to_string());
        kv("migrations", self.migrations.to_string());
        kv("evictions", self.evictions.to_string());
        kv("stalled_arrivals", self.stalled_arrivals.to_string());
        kv("remote_reads", self.remote_reads.to_string());
        kv("remote_writes", self.remote_writes.to_string());
        kv("context_bytes_sent", self.context_bytes_sent.to_string());
        kv("heap_words", self.heap_words.to_string());
        kv(
            "hist_bins",
            self.hist_bins
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
        kv("hist_overflow", self.hist_overflow.to_string());
        kv("hist_total_value", self.hist_total_value.to_string());
        kv("hist_total_count", self.hist_total_count.to_string());
        kv("hist_max_seen", self.hist_max_seen.to_string());
        kv("wire_frames_tx", self.wire.frames_tx.to_string());
        kv("wire_bytes_tx", self.wire.bytes_tx.to_string());
        kv("wire_frames_rx", self.wire.frames_rx.to_string());
        kv("wire_bytes_rx", self.wire.bytes_rx.to_string());
        kv("wire_dupes_rx", self.wire.dupes_rx.to_string());
        kv("wire_arrives_tx", self.wire.arrives_tx.to_string());
        kv(
            "wire_context_bytes_tx",
            self.wire.context_bytes_tx.to_string(),
        );
        kv(
            "wire_frames_tx_total",
            self.wire.frames_tx_total.to_string(),
        );
        kv("wire_bytes_tx_total", self.wire.bytes_tx_total.to_string());
        kv("wire_flushes_tx", self.wire.flushes_tx.to_string());
        kv("wire_egress_hwm", self.wire.egress_hwm.to_string());
        kv("wall_s", format!("{:.9}", self.wall_s));
        s
    }

    /// Parse [`CounterSummary::render`] output.
    pub fn parse(text: &str) -> Result<CounterSummary, String> {
        let mut out = CounterSummary::default();
        let mut seen = 0usize;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {line:?}"))?;
            let u = || v.parse::<u64>().map_err(|_| format!("bad u64 in {line:?}"));
            match k {
                "local_accesses" => out.local_accesses = u()?,
                "migrations" => out.migrations = u()?,
                "evictions" => out.evictions = u()?,
                "stalled_arrivals" => out.stalled_arrivals = u()?,
                "remote_reads" => out.remote_reads = u()?,
                "remote_writes" => out.remote_writes = u()?,
                "context_bytes_sent" => out.context_bytes_sent = u()?,
                "heap_words" => out.heap_words = u()?,
                "hist_bins" => {
                    out.hist_bins = v
                        .split(',')
                        .map(|b| b.parse::<u64>().map_err(|_| format!("bad bin {b:?}")))
                        .collect::<Result<_, _>>()?
                }
                "hist_overflow" => out.hist_overflow = u()?,
                "hist_total_value" => {
                    out.hist_total_value = v
                        .parse::<u128>()
                        .map_err(|_| format!("bad u128 in {line:?}"))?
                }
                "hist_total_count" => out.hist_total_count = u()?,
                "hist_max_seen" => out.hist_max_seen = u()?,
                "wire_frames_tx" => out.wire.frames_tx = u()?,
                "wire_bytes_tx" => out.wire.bytes_tx = u()?,
                "wire_frames_rx" => out.wire.frames_rx = u()?,
                "wire_bytes_rx" => out.wire.bytes_rx = u()?,
                "wire_dupes_rx" => out.wire.dupes_rx = u()?,
                "wire_arrives_tx" => out.wire.arrives_tx = u()?,
                "wire_context_bytes_tx" => out.wire.context_bytes_tx = u()?,
                "wire_frames_tx_total" => out.wire.frames_tx_total = u()?,
                "wire_bytes_tx_total" => out.wire.bytes_tx_total = u()?,
                "wire_flushes_tx" => out.wire.flushes_tx = u()?,
                "wire_egress_hwm" => out.wire.egress_hwm = u()?,
                "wall_s" => {
                    out.wall_s = v
                        .parse::<f64>()
                        .map_err(|_| format!("bad f64 in {line:?}"))?
                }
                other => return Err(format!("unknown key {other:?}")),
            }
            seen += 1;
        }
        if seen == 0 {
            return Err("empty summary".into());
        }
        Ok(out)
    }

    /// Write the rendering to a file (atomically enough for a
    /// parent/child handoff: write to `.tmp`, then rename).
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.render())?;
        std::fs::rename(&tmp, path)
    }

    /// Read a summary written by [`CounterSummary::write_to`].
    pub fn read_from(path: &Path) -> io::Result<CounterSummary> {
        let text = std::fs::read_to_string(path)?;
        CounterSummary::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Where a node's timing-plane snapshot rides next to its counter
/// summary: `node0.txt` → `node0.obs`. A *separate* file on purpose —
/// obs metrics must never leak into the deterministic `key=value`
/// artifact that the agreement comparison reads.
pub fn obs_sidecar(summary_path: &Path) -> std::path::PathBuf {
    summary_path.with_extension("obs")
}

/// Write a node's counter summary plus, when the run carried an armed
/// obs registry, its metrics snapshot to the sidecar. The sidecar
/// write is best-effort: telemetry must never fail the parent/child
/// handoff that the correctness claim rides on.
pub fn write_summary_with_obs(
    summary: &CounterSummary,
    obs: Option<&em2_obs::Snapshot>,
    path: &Path,
) -> io::Result<()> {
    summary.write_to(path)?;
    if let Some(s) = obs {
        let _ = s.write_to(&obs_sidecar(path));
    }
    Ok(())
}

/// Read and merge every obs sidecar present next to the given summary
/// paths — cluster-wide timing-plane totals. `None` when obs was off
/// everywhere (no sidecar written). Sidecars are all-or-nothing per
/// cluster (the env/config is shared), so a partial set is reported as
/// an error rather than silently under-counted.
pub fn merge_obs_sidecars<'a>(
    summary_paths: impl IntoIterator<Item = &'a Path>,
) -> io::Result<Option<em2_obs::Snapshot>> {
    let mut merged: Option<em2_obs::Snapshot> = None;
    let mut missing = 0usize;
    for p in summary_paths {
        let side = obs_sidecar(p);
        if !side.exists() {
            missing += 1;
            continue;
        }
        let s = em2_obs::Snapshot::read_from(&side)?;
        match &mut merged {
            Some(m) => m.merge(&s),
            None => merged = Some(s),
        }
    }
    if merged.is_some() && missing > 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{missing} node(s) wrote no obs sidecar while others did"),
        ));
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CounterSummary {
        CounterSummary {
            local_accesses: 10,
            migrations: 3,
            evictions: 1,
            stalled_arrivals: 0,
            remote_reads: 4,
            remote_writes: 5,
            context_bytes_sent: 72,
            heap_words: 9,
            hist_bins: vec![0, 2, 1],
            hist_overflow: 1,
            hist_total_value: 99,
            hist_total_count: 4,
            hist_max_seen: 80,
            wire: WireSnapshot {
                frames_tx: 7,
                bytes_tx: 700,
                frames_rx: 6,
                bytes_rx: 600,
                dupes_rx: 1,
                arrives_tx: 2,
                context_bytes_tx: 48,
                frames_tx_total: 9,
                bytes_tx_total: 720,
                flushes_tx: 3,
                egress_hwm: 5,
            },
            wall_s: 0.25,
        }
    }

    #[test]
    fn render_parse_round_trips() {
        let s = sample();
        let parsed = CounterSummary::parse(&s.render()).expect("parse");
        assert_eq!(parsed, s);
    }

    #[test]
    fn merge_sums_counters_and_maxes_extrema() {
        let a = sample();
        let mut b = sample();
        b.hist_max_seen = 200;
        b.wall_s = 0.1;
        let sum = CounterSummary::sum([a.clone(), b]);
        assert_eq!(sum.migrations, 6);
        assert_eq!(sum.hist_bins, vec![0, 4, 2]);
        assert_eq!(sum.hist_max_seen, 200);
        assert_eq!(sum.hist_total_value, 198);
        assert!((sum.wall_s - 0.25).abs() < 1e-12, "wall is a max");
        assert_eq!(sum.wire.frames_tx, 14);
        assert_eq!(sum.total_ops(), 2 * a.total_ops());
    }

    #[test]
    fn counters_equal_ignores_wall_and_wire() {
        let a = sample();
        let mut b = sample();
        b.wall_s = 99.0;
        b.wire.frames_tx = 0;
        assert!(a.counters_equal(&b));
        b.migrations += 1;
        assert!(!a.counters_equal(&b));
    }

    #[test]
    fn obs_sidecar_rides_next_to_the_summary() {
        let dir = std::env::temp_dir().join(format!(
            "em2-net-obs-sidecar-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let p0 = dir.join("node0.txt");
        let p1 = dir.join("node1.txt");
        let mut snap = em2_obs::Snapshot {
            nodes: 1,
            retired: 5,
            ..Default::default()
        };
        snap.task_latency_ns.record(1000);
        write_summary_with_obs(&sample(), Some(&snap), &p0).expect("node0");
        write_summary_with_obs(&sample(), Some(&snap), &p1).expect("node1");
        let merged = merge_obs_sidecars([p0.as_path(), p1.as_path()])
            .expect("merge")
            .expect("sidecars present");
        assert_eq!(merged.nodes, 2);
        assert_eq!(merged.retired, 10);
        assert_eq!(merged.task_latency_ns.count, 2);
        // Obs off everywhere → no sidecar, no totals, no error.
        let bare = dir.join("node2.txt");
        write_summary_with_obs(&sample(), None, &bare).expect("node2");
        assert!(merge_obs_sidecars([bare.as_path()]).expect("ok").is_none());
        // A partial set is a hard error, not a silent undercount.
        assert!(merge_obs_sidecars([p0.as_path(), bare.as_path()]).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_round_trip() {
        let path = std::env::temp_dir().join(format!(
            "em2-net-summary-{}-{:?}.txt",
            std::process::id(),
            std::thread::current().id()
        ));
        sample().write_to(&path).expect("write");
        assert_eq!(CounterSummary::read_from(&path).expect("read"), sample());
        let _ = std::fs::remove_file(path);
    }
}
