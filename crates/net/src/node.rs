//! The node layer: membership, routing, distributed barriers,
//! cluster-wide quiesce, and fail-fast error recovery.
//!
//! A [`NodeRuntime`] wraps one `em2-rt` [`Runtime`] owning this
//! process's shard range and wires it to its peers:
//!
//! * **Connections.** Every node listens on its spec address; node `j`
//!   dials every `i < j` (with jittered exponential backoff inside the
//!   spec's connect budget — nodes come up in any order) and opens
//!   with `Hello{node, wire_version, topology_digest}`; the acceptor
//!   verifies and answers `HelloAck`. Version or topology mismatch
//!   refuses the connection — two processes that disagree on shard
//!   ownership must not exchange a single shard message.
//! * **Routing.** The runtime hands any message addressed to a shard
//!   it does not own to [`em2_rt::NodeLink::forward`]; the link looks
//!   the current owner up in the epoch-versioned
//!   [`em2_rt::ShardDirectory`], wraps the message
//!   in [`NetMsg::Shard`] (stamped with the sender's epoch) and pushes
//!   it onto the owner peer's
//!   **lock-free egress queue** — the shard worker never touches a
//!   mutex or a socket. One **writer thread per peer** drains that
//!   queue, assigns sequence numbers in pop order, coalesces up to a
//!   bounded window of frames into one flush
//!   ([`crate::transport::FrameTx::send_frames`]), and absorbs the
//!   heartbeat timer into its idle loop (DESIGN.md §11). One **reader
//!   thread per peer** decodes inbound frames and injects them through
//!   [`em2_rt::RemoteInbox`] — the executor's ordinary mailbox/waker
//!   seam; the workers never know a message crossed a process.
//! * **Barriers.** Node 0 is the coordinator: it holds the cluster's
//!   real [`AtomicBarriers`]. Arrivals anywhere park locally and
//!   travel to the coordinator; the quota-meeting arrival triggers a
//!   `BarrierRelease` fan-out, which each node mirrors into its local
//!   hub and parked shards.
//! * **Elastic membership.** Ownership is not static: node 0 also
//!   coordinates **live shard handoffs** (`Prepare → Freeze →
//!   Transfer → Commit`, one at a time). The source freezes the shard
//!   ([`em2_rt::RemoteInbox::freeze_shard`]), ships its heap words,
//!   guest contexts, parked envelopes and scheme state as a
//!   [`FrozenShard`] inside [`NetMsg::HandoffTransfer`]; the
//!   destination installs it and acks; the coordinator bumps the
//!   directory **epoch** and broadcasts the new ownership map.
//!   In-flight frames are epoch-fenced: a node that receives a shard
//!   frame it no longer (or does not yet) expect bounces it back to
//!   the sender for re-route against the updated directory — stale
//!   frames are never silently applied (DESIGN.md §13).
//! * **Quiesce.** Submissions are counted per node and reported on
//!   close (`Closed{submitted}`); every retirement anywhere sends
//!   `Retired`. When all nodes have closed and `retired == submitted`,
//!   the coordinator broadcasts `Quiesce` and every runtime's workers
//!   stop. Because a task retires only after its final access, quiesce
//!   implies no shard message is in flight anywhere (DESIGN.md §9).
//! * **Failure.** Nothing in this module panics or hangs on a sick
//!   cluster (DESIGN.md §10). The first failure a node observes — a
//!   dead send, an EOF without the protocol's goodbye, a checksum or
//!   sequence-gap decode error, a heartbeat deadline, the run
//!   watchdog — is recorded as a typed [`ClusterError`] in the node's
//!   failure slot, the local workers are woken and drained through
//!   [`em2_rt::RemoteInbox::begin_shutdown`], an [`NetMsg::Abort`] is
//!   propagated (to the coordinator, which rebroadcasts), and
//!   [`NodeRuntime::finish`] returns `Err` instead of counters that
//!   never converged.
//!
//! Counter exactness: decisions, counters, and run histograms are
//! per-thread program-order functions (DESIGN.md §7); distribution
//! changes only *where* each access executes, so summing the nodes'
//! [`em2_rt::RtReport`] counters reproduces the single-process run
//! bit-for-bit — `crates/net/tests` pins this for loopback, UDS, and
//! TCP, and `crates/net/tests/chaos.rs` pins that it *stays* true
//! under benign injected faults (delays, duplicates).

use crate::cluster::ClusterSpec;
use crate::error::ClusterError;
use crate::proto::NetMsg;
use crate::transport::{Duplex, FrameRx, FrameTx, Transport};
use em2_engine::AtomicBarriers;
use em2_model::{DetRng, ThreadId};
use em2_placement::Placement;
use em2_rt::mpsc::MpscQueue;
use em2_rt::wire::{FrozenShard, WireMsg, WIRE_VERSION};
use em2_rt::{
    NodeLink, NodeRole, RtConfig, RtReport, Runtime, ShardDirectory, TaskRegistry, TaskSpec,
};
use em2_trace::Workload;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Environment override for the connect budget
/// (`ClusterTimeouts::connect_ms`), so test runs can fail fast without
/// editing every spec string.
pub const CONNECT_TIMEOUT_ENV: &str = "EM2_NET_CONNECT_TIMEOUT_MS";

/// Environment override for the egress coalesce window: `0` forces
/// one frame per flush (the pre-batching wire behavior, for A/B bit-
/// equality smoke runs); anything else keeps the default window.
/// Coalescing never changes which frames cross the wire or their
/// order — only how many share a syscall — so both settings must
/// produce identical counters.
pub const COALESCE_ENV: &str = "EM2_NET_COALESCE";

/// Environment override for the coordinator's per-handoff watchdog
/// budget: a live shard handoff stuck in any phase for longer than
/// this fails the cluster typed ([`ClusterError::Handoff`]) instead of
/// wedging quiesce forever.
pub const HANDOFF_TIMEOUT_ENV: &str = "EM2_NET_HANDOFF_TIMEOUT_MS";

/// Environment override for the epoch-fencing bounce budget: how many
/// times one frame may be re-routed while ownership moves before the
/// run fails typed (a bound on fencing ping-pong, not a hot-path
/// knob — a healthy handoff resolves every bounce in one epoch).
pub const BOUNCE_RETRIES_ENV: &str = "EM2_NET_BOUNCE_RETRIES";

fn handoff_timeout_ms() -> u64 {
    em2_model::env::parse::<u64>(HANDOFF_TIMEOUT_ENV)
        .unwrap_or(5000)
        .max(1)
}

fn bounce_retry_cap() -> u32 {
    em2_model::env::parse::<u32>(BOUNCE_RETRIES_ENV)
        .unwrap_or(16)
        .max(1)
}

/// Frames one writer flush may coalesce (the bounded window that keeps
/// a burst from turning into unbounded latency for the frame at its
/// head).
const COALESCE_FRAMES: usize = 64;

/// Byte bound on one coalesced flush (a window of maximum-size frames
/// must not buffer tens of MiB before the first byte moves).
const COALESCE_BYTES: usize = 256 << 10;

fn coalesce_window() -> usize {
    match em2_model::env::raw(COALESCE_ENV) {
        Some(v) if v.trim() == "0" => 1,
        _ => COALESCE_FRAMES,
    }
}

/// Per-node wire telemetry (atomics: writer threads, readers, and
/// shard workers bump them concurrently). In `frames_tx`/`bytes_tx`
/// (and their rx twins), control frames (heartbeats, aborts, goodbyes)
/// are **excluded** so fault-free counters are identical whether or
/// not heartbeats run; `frames_tx_total`/`bytes_tx_total` count every
/// frame written after the handshake, control included — the honest
/// egress ledger. `flushes_tx` and `egress_hwm` are timing-dependent
/// (like wall clock): how frames pack into flushes and how deep queues
/// get depends on scheduling, so they are telemetry, never part of an
/// agreement check.
#[derive(Default)]
struct WireStats {
    frames_tx: AtomicU64,
    bytes_tx: AtomicU64,
    frames_rx: AtomicU64,
    bytes_rx: AtomicU64,
    /// Inbound frames discarded as sequence-layer duplicates.
    dupes_rx: AtomicU64,
    /// Migration/eviction envelopes shipped to another process.
    arrives_tx: AtomicU64,
    /// Serialized task-context bytes inside those envelopes — the
    /// "context bytes on the wire" the paper's §5 sizing argument is
    /// about.
    context_bytes_tx: AtomicU64,
    /// Coalesced flush batches written (≈ egress syscalls on stream
    /// transports); `flushes_tx < frames_tx` proves frames-per-flush
    /// exceeded one. (`frames_tx_total`/`bytes_tx_total` live on each
    /// [`Peer`] — the writer thread owns that ledger — and are summed
    /// into the snapshot.)
    flushes_tx: AtomicU64,
    /// High-water mark of any peer egress queue's depth.
    egress_hwm: AtomicU64,
}

/// A snapshot of one node's wire telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireSnapshot {
    /// Frames sent to peers (control frames excluded).
    pub frames_tx: u64,
    /// Payload bytes sent (excluding the 4-byte frame header).
    pub bytes_tx: u64,
    /// Frames received from peers (control frames and duplicates
    /// excluded).
    pub frames_rx: u64,
    /// Payload bytes received.
    pub bytes_rx: u64,
    /// Inbound frames dropped by sequence-number deduplication — zero
    /// on a healthy network; nonzero proves the codec absorbed a
    /// duplicate-delivery fault without disturbing the run.
    pub dupes_rx: u64,
    /// Task envelopes (migrations, evictions, seeds) sent cross-process.
    pub arrives_tx: u64,
    /// Serialized task-context bytes inside sent envelopes.
    pub context_bytes_tx: u64,
    /// Every frame written after the handshake, **control included** —
    /// the total per-peer egress ledger (heartbeats, aborts, goodbyes
    /// all cost wire time even though they are excluded from the
    /// deterministic `frames_tx`).
    pub frames_tx_total: u64,
    /// Payload bytes of every written frame (control included).
    pub bytes_tx_total: u64,
    /// Coalesced flush batches written (≈ egress syscalls on stream
    /// transports). Timing-dependent telemetry, like wall clock.
    pub flushes_tx: u64,
    /// Deepest any peer egress queue got (frames). Timing-dependent.
    pub egress_hwm: u64,
}

impl WireSnapshot {
    /// Element-wise sum (cluster totals); the high-water mark takes
    /// the max — a cluster-wide depth sum would describe no queue.
    pub fn merge(&mut self, o: &WireSnapshot) {
        self.frames_tx += o.frames_tx;
        self.bytes_tx += o.bytes_tx;
        self.frames_rx += o.frames_rx;
        self.bytes_rx += o.bytes_rx;
        self.dupes_rx += o.dupes_rx;
        self.arrives_tx += o.arrives_tx;
        self.context_bytes_tx += o.context_bytes_tx;
        self.frames_tx_total += o.frames_tx_total;
        self.bytes_tx_total += o.bytes_tx_total;
        self.flushes_tx += o.flushes_tx;
        self.egress_hwm = self.egress_hwm.max(o.egress_hwm);
    }
}

/// Cluster-global completion accounting (coordinator only).
struct CoordState {
    closed_nodes: usize,
    submitted: u64,
    retired: u64,
    quiesced: bool,
}

/// Coordinator-only state: the cluster's real barrier hub, the
/// quiesce ledger, and the handoff ledger.
struct Coordinator {
    barriers: AtomicBarriers,
    state: Mutex<CoordState>,
    handoffs: Mutex<HandoffLedger>,
}

/// The handoff currently in flight (the coordinator runs handoffs one
/// at a time: the epoch is a total order of ownership changes, and a
/// single transfer in flight keeps the fencing argument simple).
struct ActiveHandoff {
    hid: u64,
    shard: u32,
    from: u32,
    to: u32,
    /// Which protocol step the handoff is in (`prepare` → `transfer`);
    /// stamped onto any error observed while the handoff is active and
    /// named by the watchdog when a step never completes.
    phase: &'static str,
    started: Instant,
}

/// Coordinator-only handoff ledger: the one in-flight handoff plus the
/// queue of requested-but-not-started ones.
///
/// Lock ordering: the quiesce ledger (`Coordinator::state`) may be
/// held while taking this lock (`maybe_quiesce` checks handoff
/// idleness), never the reverse — `coord_handoff_done` drops this
/// guard before re-checking quiesce.
struct HandoffLedger {
    next_hid: u64,
    active: Option<ActiveHandoff>,
    queue: VecDeque<(u32, u32)>,
}

/// Frames buffered for a shard whose state is in flight toward us:
/// `(from_node, bounce_retries, msg)` tuples replayed after install.
type BufferedFrames = Vec<(usize, u32, WireMsg)>;

/// Per-node fencing state for shards in motion.
struct HandoffState {
    /// Shards this node has been told to expect (`HandoffExpect`)
    /// whose `HandoffTransfer` has not yet installed: inbound frames
    /// for them are buffered here `(from_node, retries, msg)` and
    /// replayed after install, instead of bouncing back and forth
    /// while the state is in flight.
    expecting: HashMap<usize, (u64, BufferedFrames)>,
    /// Frames waiting out a stale local map: bounces proven still in
    /// motion and frames stamped ahead of our epoch. They park here
    /// until the next `EpochUpdate` installs a newer map, then
    /// re-route through it.
    parked_bounces: Vec<(usize, u32, WireMsg)>,
    /// Highest handoff id whose `HandoffTransfer` this node already
    /// installed as the destination. A `HandoffExpect` at or below it
    /// is stale — the transfer it announces beat it here over the
    /// source's connection — and must be dropped: honoring it would
    /// plant an expect entry whose removal (the install) already
    /// happened, a trap that swallows any frame buffered into it.
    done_dest_hid: u64,
}

/// What travels down a peer's egress queue.
enum EgressItem {
    /// An encodable message; the writer assigns its sequence number at
    /// pop time.
    Msg(NetMsg),
    /// Teardown sentinel, pushed by `finish` after everything else:
    /// the writer drains the FIFO up to here, appends [`NetMsg::Bye`]
    /// iff the run was clean, flushes, closes the connection, and
    /// exits.
    Close { bye: bool },
}

/// One peer edge: the egress queue its writer thread drains, the
/// wakeup handshake, and the edge's liveness clocks. The connection's
/// send half is **owned by the writer thread** — no shared send state,
/// so the producer side (`forward`, coordinator logic) is entirely
/// lock-free.
struct Peer {
    /// Main egress lane (lock-free MPSC; the writer is the single
    /// consumer). FIFO push order is exactly the old per-peer mutex's
    /// serialization order, which is what keeps Closed-after-last-
    /// Shard and Bye-last intact (DESIGN.md §11).
    egress: MpscQueue<EgressItem>,
    /// Priority lane: an Abort must jump every frame still queued in
    /// the main lane. Failure-path only — never on the hot path.
    urgent: Mutex<Vec<NetMsg>>,
    /// Main-lane depth in frames (high-water telemetry).
    depth: AtomicU64,
    /// Writer parking handshake: `true` while the writer is committed
    /// to parking. Producers push, then swap this and unpark on
    /// observing `true`; the writer re-checks the queue after setting
    /// it (both SeqCst) — no lost wakeup.
    sleeping: AtomicBool,
    /// The writer thread's handle, registered by the thread itself
    /// before it first sets `sleeping`.
    writer: OnceLock<std::thread::Thread>,
    /// Every frame this edge has written after the handshake (control
    /// included) — the per-peer egress ledger.
    frames_tx: AtomicU64,
    /// Payload bytes this edge has written (control included).
    bytes_tx: AtomicU64,
    /// Milliseconds (since the link epoch) of the last frame sent to /
    /// received from this peer — the writer's idle-heartbeat and
    /// liveness clocks.
    last_tx_ms: AtomicU64,
    last_rx_ms: AtomicU64,
    /// The peer announced a clean close ([`NetMsg::Bye`]); a
    /// subsequent EOF is a shutdown, not a loss.
    bye: AtomicBool,
}

impl Peer {
    fn new() -> Peer {
        Peer {
            egress: MpscQueue::new(),
            urgent: Mutex::new(Vec::new()),
            depth: AtomicU64::new(0),
            sleeping: AtomicBool::new(false),
            writer: OnceLock::new(),
            frames_tx: AtomicU64::new(0),
            bytes_tx: AtomicU64::new(0),
            last_tx_ms: AtomicU64::new(0),
            last_rx_ms: AtomicU64::new(0),
            bye: AtomicBool::new(false),
        }
    }

    /// Unpark the writer if it committed to parking. Lock-free: one
    /// swap, at most one `unpark`.
    fn wake_writer(&self) {
        if self.sleeping.swap(false, Ordering::SeqCst) {
            if let Some(t) = self.writer.get() {
                t.unpark();
            }
        }
    }
}

/// Everything shared between shard workers (via [`NodeLink`]), reader
/// threads, the per-peer writer threads, the watchdog, and the
/// [`NodeRuntime`] handle.
struct Links {
    spec: ClusterSpec,
    me: usize,
    /// The epoch-versioned ownership map — the **same** `Arc` the
    /// local runtime routes with, so an ownership flip during a
    /// handoff is observed atomically by workers, readers, and
    /// writers.
    directory: Arc<ShardDirectory>,
    /// Per-node fencing state for shards in motion.
    handoff: Mutex<HandoffState>,
    /// Indexed by node id; `None` at `me`.
    peers: Vec<Option<Peer>>,
    /// Set once the runtime is up; readers start after that.
    inbox: OnceLock<em2_rt::RemoteInbox>,
    coord: Option<Coordinator>,
    stats: WireStats,
    /// Frames one flush may coalesce (read once from [`COALESCE_ENV`]
    /// at startup; `1` disables batching for A/B smoke runs).
    coalesce_window: usize,
    /// First failure observed on this node; `finish` refuses to report
    /// counters from a cluster that broke mid-run.
    failure: Mutex<Option<ClusterError>>,
    /// The cluster quiesced cleanly: teardown noise (a peer's close
    /// racing our heartbeat) is no longer a failure.
    quiesced: AtomicBool,
    /// The local run is over (set by `finish` after the workers
    /// joined); stops the heartbeat and watchdog threads.
    done: AtomicBool,
    /// Origin of the `last_*_ms` clocks.
    epoch: Instant,
    /// The runtime's timing-plane registry, set after the local
    /// `Runtime` comes up (readers/writers start later, so they always
    /// observe it). Arms per-peer wire telemetry and the crash flight
    /// recorder; `OnceLock` stays empty when obs is off.
    obs: OnceLock<Arc<em2_obs::NodeObs>>,
}

/// Which peer a failure names, for the flight recorder's final event.
fn failure_peer(err: &ClusterError) -> Option<u64> {
    match err {
        ClusterError::PeerLost { node, .. } => Some(*node as u64),
        ClusterError::Codec { from, .. }
        | ClusterError::Aborted { from, .. }
        | ClusterError::Protocol { from, .. } => Some(*from as u64),
        _ => None,
    }
}

impl Links {
    fn inbox(&self) -> &em2_rt::RemoteInbox {
        self.inbox.get().expect("inbox attached before readers run")
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn peer(&self, node: usize) -> &Peer {
        self.peers[node].as_ref().expect("no connection to self")
    }

    /// The failure slot, poison-tolerant: a panicking holder must not
    /// cascade into every other thread's error path.
    fn lock_failure(&self) -> MutexGuard<'_, Option<ClusterError>> {
        self.failure.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Record the run's first failure, wake the local workers, and
    /// propagate an [`NetMsg::Abort`] so every other node fails fast
    /// instead of waiting out its deadline. Later failures are
    /// sympathetic noise and only reinforce the shutdown.
    ///
    /// The abort fan-out goes through the peers' **urgent lanes**: an
    /// Abort jumps every data frame still queued in the main egress
    /// FIFO, so a wedged bulk queue cannot delay the cluster's failure
    /// signal. Callable from any thread, including a writer: it only
    /// enqueues, never touches a connection.
    fn fail(&self, err: ClusterError) {
        if self.quiesced.load(Ordering::Acquire) {
            // The run already completed; connection teardown noise
            // cannot invalidate counters that converged.
            return;
        }
        // A failure observed while a shard is mid-handoff names the
        // handoff and its phase — the post-mortem must say *where* the
        // transfer died. `try_lock` because fail() may already hold
        // the ledger (a freeze failure inside the pump).
        let err = match self.handoff_note() {
            Some(note) => err.annotate(&note),
            None => err,
        };
        let first = {
            let mut slot = self.lock_failure();
            if slot.is_some() {
                false
            } else {
                *slot = Some(err.clone());
                true
            }
        };
        if let Some(inbox) = self.inbox.get() {
            inbox.begin_shutdown();
        }
        if !first {
            return;
        }
        // The crash flight recorder: the run's *first* failure dumps
        // the last trace events + a full metrics snapshot to JSONL.
        // Best-effort by design — post-mortem I/O must never mask or
        // delay the abort fan-out below.
        if let Some(obs) = self.obs.get() {
            let peer = failure_peer(&err);
            if let Some(p) = peer {
                obs.node_event(em2_obs::EventKind::PeerDown, p, 0);
            }
            let _ = obs.flight_dump(
                err.kind(),
                &err.to_string(),
                peer,
                Some(&self.wedge_census_json()),
            );
        }
        match &err {
            ClusterError::Aborted { from, reason } => {
                // Sympathetic failure: the origin already knows. The
                // coordinator relays to everyone else; leaves stop.
                if self.me == 0 {
                    for node in 0..self.spec.num_nodes() {
                        if node != self.me && node != *from {
                            self.send_urgent(
                                node,
                                NetMsg::Abort {
                                    reason: reason.clone(),
                                },
                            );
                        }
                    }
                }
            }
            _ => {
                let reason = err.to_string();
                if self.me == 0 {
                    for node in 0..self.spec.num_nodes() {
                        if node != self.me {
                            self.send_urgent(
                                node,
                                NetMsg::Abort {
                                    reason: reason.clone(),
                                },
                            );
                        }
                    }
                } else {
                    self.send_urgent(0, NetMsg::Abort { reason });
                }
            }
        }
    }

    /// Best-effort control send: consumes a sequence number on
    /// Enqueue one message on a peer's main egress FIFO and wake its
    /// writer. This is the whole hot path for a sender: one lock-free
    /// push plus at most one `unpark` — no mutex, no syscall, no
    /// blocking on a slow peer. A dead connection is the **writer's**
    /// discovery (it records the failure); producers cannot fail.
    fn send_to(&self, node: usize, msg: NetMsg) {
        let peer = self.peer(node);
        let d = peer.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.stats.egress_hwm.fetch_max(d, Ordering::Relaxed);
        peer.egress.push(EgressItem::Msg(msg));
        peer.wake_writer();
    }

    /// Queue-jumping control send: the writer drains the urgent lane
    /// before the main FIFO, so an [`NetMsg::Abort`] overtakes any
    /// backlog of data frames. Best-effort (a missing or dead peer is
    /// ignored) and never counted toward deterministic telemetry —
    /// the failure path must not recurse into `fail`.
    fn send_urgent(&self, node: usize, msg: NetMsg) {
        let Some(peer) = self.peers[node].as_ref() else {
            return;
        };
        peer.urgent
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(msg);
        peer.wake_writer();
    }

    fn snapshot(&self) -> WireSnapshot {
        let (mut frames_total, mut bytes_total) = (0u64, 0u64);
        for p in self.peers.iter().flatten() {
            frames_total += p.frames_tx.load(Ordering::Relaxed);
            bytes_total += p.bytes_tx.load(Ordering::Relaxed);
        }
        WireSnapshot {
            frames_tx: self.stats.frames_tx.load(Ordering::Relaxed),
            bytes_tx: self.stats.bytes_tx.load(Ordering::Relaxed),
            frames_rx: self.stats.frames_rx.load(Ordering::Relaxed),
            bytes_rx: self.stats.bytes_rx.load(Ordering::Relaxed),
            dupes_rx: self.stats.dupes_rx.load(Ordering::Relaxed),
            arrives_tx: self.stats.arrives_tx.load(Ordering::Relaxed),
            context_bytes_tx: self.stats.context_bytes_tx.load(Ordering::Relaxed),
            frames_tx_total: frames_total,
            bytes_tx_total: bytes_total,
            flushes_tx: self.stats.flushes_tx.load(Ordering::Relaxed),
            egress_hwm: self.stats.egress_hwm.load(Ordering::Relaxed),
        }
    }

    // ---------------------------------------------- coordinator logic

    fn coord(&self) -> &Coordinator {
        self.coord.as_ref().expect("only node 0 coordinates")
    }

    fn coord_lock(&self) -> MutexGuard<'_, CoordState> {
        // Poison-tolerant: the ledger is monotone counters, never
        // half-updated, so a panicking holder leaves a usable state.
        self.coord().state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn coord_barrier_arrive(&self, k: usize) {
        if self.coord().barriers.arrive(k) == em2_engine::BarrierArrival::Completes {
            for node in 0..self.spec.num_nodes() {
                if node != self.me {
                    self.send_to(node, NetMsg::BarrierRelease { k: k as u32 });
                }
            }
            self.inbox().release_barrier(k);
        }
    }

    fn coord_retired(&self) {
        let mut st = self.coord_lock();
        st.retired += 1;
        self.maybe_quiesce(&mut st);
    }

    fn coord_closed(&self, submitted: u64) -> Result<(), ClusterError> {
        let mut st = self.coord_lock();
        st.closed_nodes += 1;
        if st.closed_nodes > self.spec.num_nodes() {
            return Err(ClusterError::Protocol {
                from: self.me,
                detail: "more Closed messages than nodes".into(),
            });
        }
        st.submitted += submitted;
        self.maybe_quiesce(&mut st);
        Ok(())
    }

    /// Declare cluster quiesce exactly once, when every node has
    /// closed admission and every submitted task has retired. The
    /// gate order matters: `retired` may transiently exceed the
    /// `submitted` sum while some node's `Closed` is still queued, so
    /// the count comparison is only meaningful after all closes.
    fn maybe_quiesce(&self, st: &mut CoordState) {
        if st.quiesced || st.closed_nodes < self.spec.num_nodes() || st.retired != st.submitted {
            return;
        }
        // A frozen shard in transit holds heap words and possibly
        // parked envelopes; the cluster is not done until every
        // requested handoff has committed. (Lock order: quiesce state
        // → handoff ledger, here and everywhere.)
        {
            let lg = self.coord_handoffs();
            if lg.active.is_some() || !lg.queue.is_empty() {
                return;
            }
        }
        st.quiesced = true;
        self.quiesced.store(true, Ordering::Release);
        for node in 0..self.spec.num_nodes() {
            if node != self.me {
                self.send_to(node, NetMsg::Quiesce);
            }
        }
        self.inbox().begin_shutdown();
    }

    // ---------------------------------------------- handoff protocol

    /// The per-node fencing state, poison-tolerant.
    fn lock_handoff(&self) -> MutexGuard<'_, HandoffState> {
        self.handoff.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The coordinator's handoff ledger, poison-tolerant.
    fn coord_handoffs(&self) -> MutexGuard<'_, HandoffLedger> {
        self.coord()
            .handoffs
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    /// If a handoff is active (or this node is mid-receive), a note
    /// naming it for error annotation. `try_lock` everywhere: this
    /// runs on the failure path, possibly under the very locks it
    /// inspects.
    fn handoff_note(&self) -> Option<String> {
        if let Some(c) = self.coord.as_ref() {
            if let Ok(lg) = c.handoffs.try_lock() {
                if let Some(a) = lg.active.as_ref() {
                    return Some(format!(
                        "during shard handoff of shard {} (node {} -> node {}), phase {}",
                        a.shard, a.from, a.to, a.phase
                    ));
                }
            }
        }
        if let Ok(hs) = self.handoff.try_lock() {
            if let Some(&shard) = hs.expecting.keys().next() {
                return Some(format!(
                    "while awaiting the frozen state of shard {shard} (handoff transfer phase)"
                ));
            }
        }
        None
    }

    /// Route one shard-addressed message by the current directory:
    /// deliver locally if this node owns it (ownership can flip toward
    /// us between enqueue and here), otherwise ship it to the owner
    /// stamped with our epoch and the frame's re-route count.
    fn route_shard(&self, to: usize, retries: u32, msg: WireMsg) {
        // Epoch *before* owner: `ShardDirectory::install` publishes
        // the owners before the epoch, so reading in the opposite
        // order guarantees the stamp is never newer than the map that
        // chose the route. The receiver's fence relies on that: a
        // stamp ahead of the receiver's map then proves a committed
        // epoch the receiver has not installed yet, so the receiver
        // can safely park the frame until that `EpochUpdate` lands —
        // a stamp newer than any real commit would make it park on an
        // update that never arrives.
        let epoch = self.directory.epoch();
        let owner = self.directory.owner_of(to) as usize;
        if owner == self.me {
            if let Err(e) = self.inbox().deliver(to, retries, msg) {
                self.fail(ClusterError::Codec {
                    from: self.me,
                    detail: format!("undeliverable local message for shard {to}: {e}"),
                });
            }
            return;
        }
        if let WireMsg::Arrive(_) = &msg {
            self.stats.arrives_tx.fetch_add(1, Ordering::Relaxed);
            self.stats
                .context_bytes_tx
                .fetch_add(msg.context_payload_len() as u64, Ordering::Relaxed);
        }
        self.send_to(
            owner,
            NetMsg::Shard {
                to: to as u32,
                epoch,
                retries,
                msg,
            },
        );
    }

    /// Re-route every frame parked on a stale ownership map — called
    /// after an `EpochUpdate` (or, on the coordinator, a local commit)
    /// installs the map the frames were waiting for.
    fn drain_parked_bounces(&self) {
        let parked = std::mem::take(&mut self.lock_handoff().parked_bounces);
        for (shard, retries, msg) in parked {
            self.route_shard(shard, retries, msg);
        }
    }

    /// One-line census of everything that can hold cluster quiesce
    /// open on this node — the watchdogs report it so a wedged run
    /// names its stuck frame instead of timing out mute.
    fn wedge_census(&self) -> String {
        let b = self.inbox.get().map(|i| i.backlog()).unwrap_or_default();
        let (parked, expecting) = {
            let hs = self.lock_handoff();
            (
                hs.parked_bounces
                    .iter()
                    .map(|(s, r, _)| format!("shard {s} (retries {r})"))
                    .collect::<Vec<_>>(),
                hs.expecting.keys().copied().collect::<Vec<_>>(),
            )
        };
        let coord = if self.me == 0 {
            let st = self.coord_lock();
            format!(
                "; quiesce ledger: {}/{} nodes closed, {}/{} retired",
                st.closed_nodes,
                self.spec.num_nodes(),
                st.retired,
                st.submitted
            )
        } else {
            String::new()
        };
        format!(
            "node {}: {} runnable, {} parked at barriers, {} awaiting replies, \
             {} stalled on admission ({} shards busy); parked frames: [{}], \
             expecting: {:?}, epoch {}{}",
            self.me,
            b.runnable,
            b.parked_barrier,
            b.awaiting_reply,
            b.stalled_admission,
            b.skipped_shards,
            parked.join(", "),
            expecting,
            self.directory.epoch(),
            coord
        )
    }

    /// The same census as one machine-readable JSON line, for the
    /// crash flight recorder. `try_lock` everywhere: `fail` invokes
    /// this under whatever locks the failing thread already holds (the
    /// handoff pump calls `fail` while holding the coordinator's
    /// ledger), so a busy lock is reported as such instead of
    /// deadlocking the dump.
    fn wedge_census_json(&self) -> String {
        use std::fmt::Write as _;
        let b = self.inbox.get().map(|i| i.backlog()).unwrap_or_default();
        let mut s = format!(
            "{{\"kind\":\"census\",\"node\":{},\"runnable\":{},\"parked_barrier\":{},\
             \"awaiting_reply\":{},\"stalled_admission\":{},\"busy_shards\":{},\"epoch\":{}",
            self.me,
            b.runnable,
            b.parked_barrier,
            b.awaiting_reply,
            b.stalled_admission,
            b.skipped_shards,
            self.directory.epoch()
        );
        match self.handoff.try_lock() {
            Ok(hs) => {
                let parked: Vec<String> = hs
                    .parked_bounces
                    .iter()
                    .map(|(sh, r, _)| format!("[{sh},{r}]"))
                    .collect();
                let mut expecting: Vec<usize> = hs.expecting.keys().copied().collect();
                expecting.sort_unstable();
                let expecting: Vec<String> = expecting.iter().map(|sh| sh.to_string()).collect();
                let _ = write!(
                    s,
                    ",\"parked_frames\":[{}],\"expecting\":[{}]",
                    parked.join(","),
                    expecting.join(",")
                );
            }
            Err(_) => s.push_str(",\"fence_state\":\"busy\""),
        }
        if let Some(c) = self.coord.as_ref() {
            match c.handoffs.try_lock() {
                Ok(lg) => {
                    match lg.active.as_ref() {
                        Some(a) => {
                            let _ = write!(
                                s,
                                ",\"handoff_active\":{{\"hid\":{},\"shard\":{},\"from\":{},\
                                 \"to\":{},\"phase\":\"{}\"}}",
                                a.hid, a.shard, a.from, a.to, a.phase
                            );
                        }
                        None => s.push_str(",\"handoff_active\":null"),
                    }
                    let _ = write!(s, ",\"handoff_queued\":{}", lg.queue.len());
                }
                Err(_) => s.push_str(",\"handoff_ledger\":\"busy\""),
            }
            match c.state.try_lock() {
                Ok(st) => {
                    let _ = write!(
                        s,
                        ",\"closed_nodes\":{},\"submitted\":{},\"retired\":{}",
                        st.closed_nodes, st.submitted, st.retired
                    );
                }
                Err(_) => s.push_str(",\"quiesce_ledger\":\"busy\""),
            }
        }
        s.push('}');
        s
    }

    /// Freeze `shard` locally and ship its state to `to` — the
    /// source-node half of the Transfer step. Returns `false` when the
    /// handoff cannot proceed (failure already recorded).
    fn freeze_and_ship(&self, hid: u64, shard: usize, to: u32) -> bool {
        if !self.inbox().supports_handoff() {
            self.fail(ClusterError::Handoff {
                phase: "freeze".into(),
                detail: format!(
                    "node {} runs the thread-per-shard executor, which cannot freeze \
                     a live shard (use the multiplexed executor for elastic clusters)",
                    self.me
                ),
            });
            return false;
        }
        if self.directory.owner_of(shard) != self.me as u32 {
            self.fail(ClusterError::Handoff {
                phase: "freeze".into(),
                detail: format!(
                    "node {} was asked to freeze shard {shard}, which it does not own",
                    self.me
                ),
            });
            return false;
        }
        let Some(frozen) = self.inbox().freeze_shard(shard, to) else {
            // The local runtime is already torn down; the run is over.
            return false;
        };
        if let Some(obs) = self.obs.get() {
            let bytes = frozen.encode().len() as u64;
            obs.node_event(em2_obs::EventKind::HandoffFreeze, shard as u64, bytes);
            obs.handoff_freeze(hid, shard as u64, bytes);
        }
        self.send_to(
            to as usize,
            NetMsg::HandoffTransfer {
                hid,
                shard: shard as u32,
                state: Box::new(frozen),
            },
        );
        true
    }

    /// Destination-node half of the Transfer step: install the frozen
    /// state, replay every frame buffered while it was in flight, and
    /// ack the coordinator.
    fn handle_transfer(&self, from_node: usize, hid: u64, shard: usize, state: FrozenShard) {
        if shard >= self.spec.total_shards || state.shard as usize != shard {
            self.fail(ClusterError::Protocol {
                from: from_node,
                detail: format!(
                    "HandoffTransfer for shard {shard} carried state for shard {}",
                    state.shard
                ),
            });
            return;
        }
        match self.inbox().install_shard(state) {
            Ok(_) => {}
            Err(e) => {
                self.fail(ClusterError::Handoff {
                    phase: "transfer".into(),
                    detail: format!(
                        "frozen state for shard {shard} from node {from_node} failed to \
                         install: {e}"
                    ),
                });
                return;
            }
        }
        // Ownership flipped toward us inside install_shard, so frames
        // buffered from now on cannot exist; replay what accumulated
        // while the state was in flight, in arrival order. Recording
        // the hid (same lock hold) lets the Expect handler drop the
        // announcement for this transfer when it loses the race and
        // arrives after us — the coordinator's connection is not
        // ordered with the source's.
        let buffered = {
            let mut hs = self.lock_handoff();
            hs.done_dest_hid = hs.done_dest_hid.max(hid);
            hs.expecting
                .remove(&shard)
                .map(|(_, b)| b)
                .unwrap_or_default()
        };
        let replayed = buffered.len();
        for (from, retries, mut msg) in buffered {
            // A replayed arrival records the detour in its journey —
            // unconditionally, like every hop: journeys are wire
            // state, not obs state (see `em2_rt::wire::Journey`).
            if let WireMsg::Arrive(we) = &mut msg {
                we.journey.push(em2_rt::wire::JourneyHop {
                    shard: shard as u32,
                    node: self.me as u32,
                    epoch: self.directory.epoch(),
                    cause: em2_rt::wire::HopCause::HandoffReplay,
                });
            }
            // The carried re-route count rides through the local
            // delivery: should the shard flip away again before the
            // push lands, the re-forward keeps counting against the
            // frame's bounce budget instead of restarting it.
            if let Err(e) = self.inbox().deliver(shard, retries, msg) {
                self.fail(ClusterError::Codec {
                    from,
                    detail: format!("undeliverable buffered message for shard {shard}: {e}"),
                });
                return;
            }
        }
        if let Some(obs) = self.obs.get() {
            obs.node_event(
                em2_obs::EventKind::HandoffTransfer,
                shard as u64,
                replayed as u64,
            );
            obs.handoff_transfer(hid, shard as u64, replayed as u64, replayed as u64);
        }
        if self.me == 0 {
            self.coord_handoff_done(hid, shard);
        } else {
            self.send_to(
                0,
                NetMsg::HandoffDone {
                    hid,
                    shard: shard as u32,
                },
            );
        }
    }

    /// Coordinator: enqueue a handoff request and start it if the line
    /// is free.
    fn coord_handoff_request(&self, shard: u32, to: u32) {
        let mut lg = self.coord_handoffs();
        lg.queue.push_back((shard, to));
        self.pump_handoffs(&mut lg);
    }

    /// Coordinator: start queued handoffs until one is in flight (or
    /// the queue is empty). Caller holds the ledger.
    fn pump_handoffs(&self, lg: &mut HandoffLedger) {
        while lg.active.is_none() {
            let Some((shard, to)) = lg.queue.pop_front() else {
                return;
            };
            let from = self.directory.owner_of(shard as usize);
            if from == to {
                // Already where it should be (a drain raced a commit,
                // or the request was a no-op). Nothing to move.
                continue;
            }
            let hid = lg.next_hid;
            lg.next_hid += 1;
            lg.active = Some(ActiveHandoff {
                hid,
                shard,
                from,
                to,
                phase: "prepare",
                started: Instant::now(),
            });
            if let Some(obs) = self.obs.get() {
                obs.node_event(em2_obs::EventKind::HandoffPrepare, shard as u64, to as u64);
                obs.handoff_prepare(hid, shard as u64, from as u64, to as u64);
            }
            let epoch = self.directory.epoch();
            // Tell the destination to fence (buffer) frames for the
            // shard before anything ships.
            if to as usize == self.me {
                self.lock_handoff()
                    .expecting
                    .entry(shard as usize)
                    .or_insert((hid, Vec::new()));
            } else {
                self.send_to(
                    to as usize,
                    NetMsg::HandoffExpect {
                        hid,
                        shard,
                        from,
                        epoch,
                    },
                );
            }
            if let Some(a) = lg.active.as_mut() {
                a.phase = "transfer";
            }
            if from as usize == self.me {
                // Coordinator is the source: freeze and ship directly.
                // (fail() inside uses try_lock on this ledger, so
                // holding it here cannot deadlock.)
                if !self.freeze_and_ship(hid, shard as usize, to) {
                    return;
                }
            } else {
                self.send_to(
                    from as usize,
                    NetMsg::HandoffPrepare {
                        hid,
                        shard,
                        to,
                        epoch,
                    },
                );
            }
        }
    }

    /// Coordinator: the destination confirmed the install. Commit —
    /// bump the epoch, broadcast the new ownership map, start the next
    /// queued handoff, and re-check quiesce.
    fn coord_handoff_done(&self, hid: u64, shard: usize) {
        {
            let mut lg = self.coord_handoffs();
            let matches = lg
                .active
                .as_ref()
                .is_some_and(|a| a.hid == hid && a.shard as usize == shard);
            if !matches {
                // A stale or duplicate ack; the watchdog or a failure
                // already retired this handoff.
                return;
            }
            let a = lg.active.take().expect("checked above");
            self.directory.set_owner(shard, a.to);
            let epoch = self.directory.epoch() + 1;
            let owners = self.directory.snapshot();
            let installed = self.directory.install(epoch, &owners);
            debug_assert!(installed, "the coordinator's epoch only moves here");
            if let Some(obs) = self.obs.get() {
                obs.node_event(em2_obs::EventKind::HandoffCommit, shard as u64, epoch);
                obs.handoff_commit(hid);
                obs.set_dir_epoch(epoch);
            }
            for node in 0..self.spec.num_nodes() {
                if node != self.me {
                    self.send_to(
                        node,
                        NetMsg::EpochUpdate {
                            epoch,
                            owners: owners.clone(),
                        },
                    );
                }
            }
            self.pump_handoffs(&mut lg);
        }
        // Ledger dropped before touching the quiesce state (lock
        // order) and before re-routing parked frames (route may fail).
        self.drain_parked_bounces();
        let mut st = self.coord_lock();
        self.maybe_quiesce(&mut st);
    }

    /// A peer refused one of our frames: ownership moved under it.
    /// Park the frame when the bounce proves a future `EpochUpdate`
    /// will re-route it, re-route by our own directory otherwise, and
    /// fail typed if the frame has bounced more times than the
    /// fencing budget allows.
    fn handle_bounce(
        &self,
        from_node: usize,
        to: usize,
        bouncer_epoch: u64,
        retries: u32,
        mut msg: WireMsg,
    ) {
        if to >= self.spec.total_shards {
            self.fail(ClusterError::Protocol {
                from: from_node,
                detail: format!("bounced a frame for shard {to}, which does not exist"),
            });
            return;
        }
        let r = retries + 1;
        if r > bounce_retry_cap() {
            self.fail(ClusterError::Handoff {
                phase: "bounce".into(),
                detail: format!(
                    "a frame for shard {to} was re-routed {r} times without finding an \
                     owner (bounce budget {}; epoch {})",
                    bounce_retry_cap(),
                    self.directory.epoch()
                ),
            });
            return;
        }
        // A bounced arrival records the detour in its journey —
        // unconditionally, like every hop: journeys are wire state,
        // not obs state (see `em2_rt::wire::Journey`).
        if let WireMsg::Arrive(we) = &mut msg {
            we.journey.push(em2_rt::wire::JourneyHop {
                shard: to as u32,
                node: self.me as u32,
                epoch: self.directory.epoch(),
                cause: em2_rt::wire::HopCause::Bounce,
            });
        }
        if let Some(obs) = self.obs.get() {
            obs.node_event(em2_obs::EventKind::HandoffBounce, to as u64, r as u64);
            obs.handoff_bounce(to as u64);
            if let WireMsg::Arrive(we) = &msg {
                // Node-level attribution (reader threads are
                // multi-writer, hence fetch_add rather than the
                // shard-local single-writer bump).
                obs.attrib
                    .cell(we.thread, to as u32)
                    .bounces
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            // Park only on *proof* that a future `EpochUpdate` will
            // drain the frame — the bouncer's epoch stamp supplies it.
            // Stamp ahead of our map: we are behind, the catch-up
            // broadcast is in flight. Stamp equal to our map while our
            // map names the bouncer: the refusal can only come from an
            // uncommitted freeze flip (same epoch, different owner),
            // so that handoff's commit is still pending. Anything
            // else re-routes by our own directory — in particular a
            // bounce *older* than our map: a shard can return to a
            // previous owner (rolling restart), so "my map still names
            // the bouncer" alone is no evidence of staleness on our
            // side, and parking on it stranded frames forever when the
            // stale bounce arrived after the run's last epoch bump.
            // All of it under the handoff lock, which serializes
            // against `drain_parked_bounces`: an `EpochUpdate`
            // installs the new map before draining, so from behind
            // the lock we either see the updated epoch and re-route
            // below, or our park lands before the drain takes the
            // vec — never just after the drain meant to release it.
            let mut hs = self.lock_handoff();
            let ours = self.directory.epoch();
            if bouncer_epoch > ours
                || (bouncer_epoch == ours && self.directory.owner_of(to) as usize == from_node)
            {
                hs.parked_bounces.push((to, r, msg));
                return;
            }
        }
        self.route_shard(to, r, msg);
    }
}

impl NodeLink for Links {
    fn forward(&self, to_shard: usize, retries: u32, msg: WireMsg) {
        // A dead connection is discovered (and recorded) by the owner
        // peer's writer; the worker notices the failure flag on its
        // next poll. Ownership may have flipped back toward us between
        // the runtime's check and here — route_shard delivers locally
        // in that case instead of bouncing off a confused peer. The
        // runtime passes through the re-route count of the frame it
        // was delivering (0 for its own sends), so the bounce budget
        // survives the local hop.
        self.route_shard(to_shard, retries, msg);
    }

    fn forward_many(&self, msgs: Vec<(usize, WireMsg)>) {
        // A shard's batch of remote replies: enqueue every message in
        // order, then wake each destination writer once — one unpark
        // for the whole batch instead of one per frame, and the frames
        // land in the writer's window together, so they coalesce into
        // one flush. Epoch read before the owner loads — same
        // stamp-not-newer-than-route rule as `route_shard`.
        let epoch = self.directory.epoch();
        let mut woken: Vec<usize> = Vec::new();
        let mut local: Vec<(usize, WireMsg)> = Vec::new();
        for (to_shard, msg) in msgs {
            let owner = self.directory.owner_of(to_shard) as usize;
            if owner == self.me {
                // Flipped toward us mid-batch; deliver after the
                // remote pushes so the batch's wire frames still
                // coalesce.
                local.push((to_shard, msg));
                continue;
            }
            if let WireMsg::Arrive(_) = &msg {
                self.stats.arrives_tx.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .context_bytes_tx
                    .fetch_add(msg.context_payload_len() as u64, Ordering::Relaxed);
            }
            let peer = self.peer(owner);
            let d = peer.depth.fetch_add(1, Ordering::Relaxed) + 1;
            self.stats.egress_hwm.fetch_max(d, Ordering::Relaxed);
            peer.egress.push(EgressItem::Msg(NetMsg::Shard {
                to: to_shard as u32,
                epoch,
                retries: 0,
                msg,
            }));
            if !woken.contains(&owner) {
                woken.push(owner);
            }
        }
        for owner in woken {
            self.peer(owner).wake_writer();
        }
        for (to_shard, msg) in local {
            if let Err(e) = self.inbox().deliver(to_shard, 0, msg) {
                self.fail(ClusterError::Codec {
                    from: self.me,
                    detail: format!("undeliverable local message for shard {to_shard}: {e}"),
                });
            }
        }
    }

    fn barrier_arrive(&self, k: usize) {
        if self.me == 0 {
            self.coord_barrier_arrive(k);
        } else {
            self.send_to(0, NetMsg::BarrierArrive { k: k as u32 });
        }
    }

    fn task_retired(&self) {
        if self.me == 0 {
            self.coord_retired();
        } else {
            self.send_to(0, NetMsg::Retired);
        }
    }

    fn node_closed(&self, submitted: u64) {
        if self.me == 0 {
            if let Err(e) = self.coord_closed(submitted) {
                self.fail(e);
            }
        } else {
            self.send_to(0, NetMsg::Closed { submitted });
        }
    }
}

/// One reader thread: drain a peer connection into the runtime.
/// Returns on clean EOF (after the peer's [`NetMsg::Bye`] or the
/// cluster's quiesce) or after recording a failure.
fn reader_loop(links: &Links, from_node: usize, mut rx: Box<dyn FrameRx>) {
    // The handshake frame consumed sequence 0 in each direction.
    let mut expected_seq: u64 = 1;
    let peer = links.peer(from_node);
    loop {
        let frame = match rx.recv_frame() {
            Ok(Some(f)) => f,
            Ok(None) => {
                let clean = peer.bye.load(Ordering::Acquire)
                    || links.quiesced.load(Ordering::Acquire)
                    || links.done.load(Ordering::Acquire);
                if !clean {
                    links.fail(ClusterError::PeerLost {
                        node: from_node,
                        detail: "connection closed without a goodbye".into(),
                    });
                }
                return;
            }
            Err(e) => {
                if !links.done.load(Ordering::Acquire) {
                    links.fail(ClusterError::PeerLost {
                        node: from_node,
                        detail: format!("receive failed: {e}"),
                    });
                }
                return;
            }
        };
        peer.last_rx_ms.store(links.now_ms(), Ordering::Relaxed);
        let (seq, msg) = match NetMsg::decode(&frame) {
            Ok(x) => x,
            Err(e) => {
                links.fail(ClusterError::Codec {
                    from: from_node,
                    detail: e.to_string(),
                });
                return;
            }
        };
        if seq < expected_seq {
            // A replayed frame: its sequence was already consumed, so
            // dropping it is exactly once-delivery — this is why
            // duplicate faults leave the E12 sum bit-equal.
            links.stats.dupes_rx.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        if seq > expected_seq {
            links.fail(ClusterError::Codec {
                from: from_node,
                detail: format!(
                    "sequence gap from node {from_node}: expected {expected_seq}, got {seq} — \
                     at least one frame was lost"
                ),
            });
            return;
        }
        expected_seq += 1;
        if !msg.is_control() {
            links.stats.frames_rx.fetch_add(1, Ordering::Relaxed);
            links
                .stats
                .bytes_rx
                .fetch_add(frame.len() as u64, Ordering::Relaxed);
        }
        match msg {
            NetMsg::Shard {
                to,
                epoch,
                retries,
                msg,
            } => {
                let to = to as usize;
                if to >= links.spec.total_shards {
                    links.fail(ClusterError::Protocol {
                        from: from_node,
                        detail: format!("sent a message for shard {to}, which does not exist"),
                    });
                    return;
                }
                // Epoch fencing. Fast path: we own the shard, deliver.
                // Otherwise re-check under the fencing lock — an
                // install racing this frame either flips ownership
                // before our check or still holds the `expecting`
                // entry we buffer into. A frame for a shard we neither
                // own nor expect is fenced by its epoch stamp, which
                // decides *who* is stale. A stamp at or behind our map
                // means the sender routed by an old world: bounce the
                // frame back for re-route — never silently applied or
                // dropped. A stamp *ahead* of our map means *we* are
                // the laggard — the stamp is never newer than the map
                // that chose the route (senders read epoch before
                // owner; installs publish owners before epoch), so a
                // commit we have not seen exists and its `EpochUpdate`
                // broadcast is already in flight toward us. Park the
                // frame with the other map-lagged traffic and re-route
                // it when the update lands: a bounce round trip could
                // teach the cluster nothing we are not already about
                // to learn, and would burn the frame's retry budget on
                // our slowness. Both decisions happen under the
                // handoff lock — `EpochUpdate` installs the new map
                // before draining the parked frames, so a park cannot
                // slip in behind the drain that was meant to release
                // it.
                let deliver = if links.directory.owner_of(to) as usize == links.me {
                    true
                } else {
                    let mut hs = links.lock_handoff();
                    if links.directory.owner_of(to) as usize == links.me {
                        true
                    } else {
                        // Our epoch, read right after the ownership
                        // check: no install can flip this shard toward
                        // us in between (a grant always lands through
                        // `install_shard` first, guarded by the
                        // expecting entry), so the pair "epoch `ours`,
                        // not the owner" is a true statement about one
                        // instant — the bounce below stamps it so the
                        // sender can reason from it.
                        let ours = links.directory.epoch();
                        if let Some((_hid, buf)) = hs.expecting.get_mut(&to) {
                            buf.push((from_node, retries, msg));
                            continue;
                        } else if epoch > ours {
                            hs.parked_bounces.push((to, retries, msg));
                            continue;
                        } else {
                            drop(hs);
                            links.send_to(
                                from_node,
                                NetMsg::Bounce {
                                    to: to as u32,
                                    epoch: ours,
                                    retries,
                                    msg,
                                },
                            );
                            continue;
                        }
                    }
                };
                debug_assert!(deliver);
                if let Err(e) = links.inbox().deliver(to, retries, msg) {
                    links.fail(ClusterError::Codec {
                        from: from_node,
                        detail: format!("undeliverable message: {e}"),
                    });
                    return;
                }
            }
            NetMsg::BarrierArrive { k } => {
                if links.me != 0 {
                    links.fail(ClusterError::Protocol {
                        from: from_node,
                        detail: "sent BarrierArrive to a non-coordinator".into(),
                    });
                    return;
                }
                links.coord_barrier_arrive(k as usize);
            }
            NetMsg::BarrierRelease { k } => {
                links.inbox().release_barrier(k as usize);
            }
            NetMsg::Retired => {
                if links.me != 0 {
                    links.fail(ClusterError::Protocol {
                        from: from_node,
                        detail: "sent Retired to a non-coordinator".into(),
                    });
                    return;
                }
                links.coord_retired();
            }
            NetMsg::Closed { submitted } => {
                if links.me != 0 {
                    links.fail(ClusterError::Protocol {
                        from: from_node,
                        detail: "sent Closed to a non-coordinator".into(),
                    });
                    return;
                }
                if let Err(e) = links.coord_closed(submitted) {
                    links.fail(e);
                    return;
                }
            }
            NetMsg::Quiesce => {
                links.quiesced.store(true, Ordering::Release);
                links.inbox().begin_shutdown();
                // Keep reading to EOF so the close is clean.
            }
            NetMsg::Heartbeat => {
                // Pure liveness: `last_rx_ms` is already refreshed.
            }
            NetMsg::Abort { reason } => {
                links.fail(ClusterError::Aborted {
                    from: from_node,
                    reason,
                });
                return;
            }
            NetMsg::Bye => {
                peer.bye.store(true, Ordering::Release);
                // EOF follows; fall through to the clean-close path.
            }
            NetMsg::HandoffRequest { shard, to } => {
                if links.me != 0 {
                    links.fail(ClusterError::Protocol {
                        from: from_node,
                        detail: "sent HandoffRequest to a non-coordinator".into(),
                    });
                    return;
                }
                if shard as usize >= links.spec.total_shards
                    || to as usize >= links.spec.num_nodes()
                {
                    links.fail(ClusterError::Protocol {
                        from: from_node,
                        detail: format!(
                            "requested a handoff of shard {shard} to node {to}, which is \
                             outside the cluster"
                        ),
                    });
                    return;
                }
                links.coord_handoff_request(shard, to);
            }
            NetMsg::HandoffPrepare {
                hid,
                shard,
                to,
                epoch: _,
            } => {
                if from_node != 0 {
                    links.fail(ClusterError::Protocol {
                        from: from_node,
                        detail: "sent HandoffPrepare without being the coordinator".into(),
                    });
                    return;
                }
                if shard as usize >= links.spec.total_shards
                    || to as usize >= links.spec.num_nodes()
                {
                    links.fail(ClusterError::Protocol {
                        from: from_node,
                        detail: format!("HandoffPrepare names shard {shard} / node {to}"),
                    });
                    return;
                }
                // Failures are recorded inside; nothing more to do
                // here either way.
                let _ = links.freeze_and_ship(hid, shard as usize, to);
            }
            NetMsg::HandoffExpect {
                hid,
                shard,
                from: _,
                epoch: _,
            } => {
                if from_node != 0 {
                    links.fail(ClusterError::Protocol {
                        from: from_node,
                        detail: "sent HandoffExpect without being the coordinator".into(),
                    });
                    return;
                }
                let shard = shard as usize;
                if shard >= links.spec.total_shards {
                    links.fail(ClusterError::Protocol {
                        from: from_node,
                        detail: format!("HandoffExpect names shard {shard}"),
                    });
                    return;
                }
                // The Transfer travels on a different connection (the
                // source node's) and may have installed already — in
                // which case this Expect is stale and must be dropped,
                // not planted: its removal (the install) already ran,
                // so the entry would never be taken out and any frame
                // buffered into it would be stranded. Ownership is no
                // guide here (an interleaved EpochUpdate carrying a
                // pre-handoff snapshot can flip the shard away from us
                // again until the commit lands); the handoff id is —
                // the coordinator assigns them serially, so an Expect
                // at or below the last transfer we installed announces
                // the past.
                let mut hs = links.lock_handoff();
                if hid > hs.done_dest_hid {
                    hs.expecting.entry(shard).or_insert((hid, Vec::new()));
                }
            }
            NetMsg::HandoffTransfer { hid, shard, state } => {
                links.handle_transfer(from_node, hid, shard as usize, *state);
            }
            NetMsg::HandoffDone { hid, shard } => {
                if links.me != 0 {
                    links.fail(ClusterError::Protocol {
                        from: from_node,
                        detail: "sent HandoffDone to a non-coordinator".into(),
                    });
                    return;
                }
                links.coord_handoff_done(hid, shard as usize);
            }
            NetMsg::EpochUpdate { epoch, owners } => {
                if from_node != 0 {
                    links.fail(ClusterError::Protocol {
                        from: from_node,
                        detail: "broadcast EpochUpdate without being the coordinator".into(),
                    });
                    return;
                }
                if owners.len() != links.spec.total_shards {
                    links.fail(ClusterError::Protocol {
                        from: from_node,
                        detail: format!(
                            "EpochUpdate covers {} shards, cluster has {}",
                            owners.len(),
                            links.spec.total_shards
                        ),
                    });
                    return;
                }
                links.directory.install(epoch, &owners);
                if let Some(obs) = links.obs.get() {
                    obs.set_dir_epoch(epoch);
                }
                links.drain_parked_bounces();
            }
            NetMsg::Bounce {
                to,
                epoch,
                retries,
                msg,
            } => {
                links.handle_bounce(from_node, to as usize, epoch, retries, msg);
            }
            NetMsg::Hello { .. } | NetMsg::HelloAck { .. } => {
                links.fail(ClusterError::Protocol {
                    from: from_node,
                    detail: "re-sent a handshake mid-run".into(),
                });
                return;
            }
        }
    }
}

/// One writer thread: the single consumer of a peer's egress queues
/// and the sole owner of the connection's send half and its sequence
/// counter — sequence numbers are assigned in **pop order**, so the
/// wire stream is gap-free by construction no matter how producers
/// raced their pushes (DESIGN.md §11).
///
/// Each wakeup drains the urgent lane first (aborts overtake data),
/// then pops up to `coalesce_window` frames / [`COALESCE_BYTES`] from
/// the main FIFO and writes them as **one flush**
/// ([`FrameTx::send_frames`]). When both lanes go empty the writer
/// parks with a bounded tick and absorbs the old heartbeat thread's
/// job: keep an idle edge warm every `heartbeat_ms` and declare the
/// peer lost after `peer_deadline_ms` of receive silence. The
/// [`EgressItem::Close`] sentinel (pushed by `finish` after the last
/// data frame) drains the FIFO, appends [`NetMsg::Bye`] on a clean
/// run, flushes, closes, and exits — Bye stays last on the wire.
fn writer_loop(links: &Links, node: usize, conn: Box<dyn FrameTx>) {
    let peer = links.peer(node);
    let _ = peer.writer.set(std::thread::current());
    // Per-peer wire telemetry (timing plane; `None` when obs is off).
    // Flush latency is measured around `send_frames` — the exact
    // syscall cost each coalesced batch pays on this edge.
    let pobs = links.obs.get().map(|o| o.register_peer(node as u64));
    let hb = links.spec.timeouts.heartbeat_ms;
    let deadline = links.spec.timeouts.peer_deadline_ms();
    let tick = Duration::from_millis(if hb > 0 { (hb / 4).clamp(1, 50) } else { 200 });
    let window = links.coalesce_window.max(1);
    let mut conn = Some(conn);
    // The handshake frame consumed sequence 0 in this direction.
    let mut next_seq: u64 = 1;
    let mut batch: Vec<Vec<u8>> = Vec::with_capacity(window);
    loop {
        // Urgent lane first: an Abort overtakes any queued data.
        let urgent = std::mem::take(&mut *peer.urgent.lock().unwrap_or_else(|p| p.into_inner()));
        if !urgent.is_empty() {
            if let Some(c) = conn.as_mut() {
                batch.clear();
                for msg in &urgent {
                    let payload = msg.encode(next_seq);
                    next_seq += 1;
                    peer.frames_tx.fetch_add(1, Ordering::Relaxed);
                    peer.bytes_tx
                        .fetch_add(payload.len() as u64, Ordering::Relaxed);
                    batch.push(payload);
                }
                // Best-effort, like the old quiet path: the failure
                // fan-out must not recurse into fail().
                if c.send_frames(&batch).is_ok() {
                    links.stats.flushes_tx.fetch_add(1, Ordering::Relaxed);
                    peer.last_tx_ms.store(links.now_ms(), Ordering::Relaxed);
                } else {
                    conn = None;
                }
            }
            continue;
        }

        // Main lane: pop up to one coalesce window and flush it once.
        batch.clear();
        let mut popped_msgs: u64 = 0;
        let mut bytes: usize = 0;
        let mut close: Option<bool> = None;
        while batch.len() < window && bytes < COALESCE_BYTES {
            match peer.egress.pop() {
                Some(EgressItem::Msg(msg)) => {
                    popped_msgs += 1;
                    // With the connection gone the queue still drains
                    // (and frees) so producers never back up.
                    if conn.is_none() {
                        continue;
                    }
                    let payload = msg.encode(next_seq);
                    next_seq += 1;
                    peer.frames_tx.fetch_add(1, Ordering::Relaxed);
                    peer.bytes_tx
                        .fetch_add(payload.len() as u64, Ordering::Relaxed);
                    if !msg.is_control() {
                        links.stats.frames_tx.fetch_add(1, Ordering::Relaxed);
                        links
                            .stats
                            .bytes_tx
                            .fetch_add(payload.len() as u64, Ordering::Relaxed);
                    }
                    bytes += payload.len();
                    batch.push(payload);
                }
                Some(EgressItem::Close { bye }) => {
                    close = Some(bye);
                    break;
                }
                None => break,
            }
        }
        if popped_msgs > 0 {
            peer.depth.fetch_sub(popped_msgs, Ordering::Relaxed);
        }

        if let Some(bye) = close {
            if let Some(mut c) = conn.take() {
                if bye {
                    let payload = NetMsg::Bye.encode(next_seq);
                    peer.frames_tx.fetch_add(1, Ordering::Relaxed);
                    peer.bytes_tx
                        .fetch_add(payload.len() as u64, Ordering::Relaxed);
                    batch.push(payload);
                }
                if !batch.is_empty() && c.send_frames(&batch).is_ok() {
                    links.stats.flushes_tx.fetch_add(1, Ordering::Relaxed);
                }
                let _ = c.close();
            }
            return;
        }

        if !batch.is_empty() {
            let c = conn
                .as_mut()
                .expect("frames are only encoded with a live conn");
            let t0 = pobs.as_ref().map(|_| Instant::now());
            match c.send_frames(&batch) {
                Ok(()) => {
                    links.stats.flushes_tx.fetch_add(1, Ordering::Relaxed);
                    peer.last_tx_ms.store(links.now_ms(), Ordering::Relaxed);
                    if let (Some(po), Some(t0)) = (&pobs, t0) {
                        po.record_flush(
                            batch.len() as u64,
                            // True wire cost: payload plus the stream
                            // framing header per frame.
                            (bytes + batch.len() * crate::transport::FRAME_HEADER_BYTES) as u64,
                            t0.elapsed().as_nanos() as u64,
                            peer.depth.load(Ordering::Relaxed),
                        );
                    }
                }
                Err(e) => {
                    conn = None;
                    links.fail(ClusterError::PeerLost {
                        node,
                        detail: format!("send failed: {e}"),
                    });
                }
            }
        }
        if popped_msgs > 0 {
            continue;
        }

        // Idle: the heartbeat/liveness duties the dedicated thread
        // used to carry. A heartbeat advances the sequence stream, so
        // a dropped frame surfaces as a gap within one interval even
        // on an otherwise quiet edge.
        if hb > 0
            && conn.is_some()
            && !links.done.load(Ordering::Acquire)
            && !links.quiesced.load(Ordering::Acquire)
        {
            let now = links.now_ms();
            if now.saturating_sub(peer.last_tx_ms.load(Ordering::Relaxed)) >= hb {
                let payload = NetMsg::Heartbeat.encode(next_seq);
                next_seq += 1;
                peer.frames_tx.fetch_add(1, Ordering::Relaxed);
                peer.bytes_tx
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                let hb_batch = [payload];
                match conn.as_mut().expect("checked above").send_frames(&hb_batch) {
                    Ok(()) => {
                        links.stats.flushes_tx.fetch_add(1, Ordering::Relaxed);
                        peer.last_tx_ms.store(now, Ordering::Relaxed);
                    }
                    Err(e) => {
                        conn = None;
                        links.fail(ClusterError::PeerLost {
                            node,
                            detail: format!("send failed: {e}"),
                        });
                    }
                }
            }
            let silent = now.saturating_sub(peer.last_rx_ms.load(Ordering::Relaxed));
            if silent >= deadline {
                links.fail(ClusterError::PeerLost {
                    node,
                    detail: format!("no frames for {silent} ms (heartbeat deadline {deadline} ms)"),
                });
            }
        }

        // Park until a producer wakes us (or the tick elapses — the
        // heartbeat clock needs a bounded sleep). The handshake
        // mirrors the shard mailboxes': commit `sleeping`, re-check
        // both lanes, then park; a producer pushes before swapping
        // `sleeping`, so no wakeup is lost.
        peer.sleeping.store(true, Ordering::SeqCst);
        let lanes_empty = peer.egress.is_empty()
            && peer
                .urgent
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .is_empty();
        if lanes_empty {
            std::thread::park_timeout(tick);
        }
        peer.sleeping.store(false, Ordering::SeqCst);
    }
}

/// Run-deadline watchdog: if the run neither quiesces nor fails
/// within `run_ms` of [`NodeRuntime::finish`], record a typed timeout
/// (classified by what the local shards are stuck on) and force the
/// shutdown so `finish` returns instead of hanging.
fn watchdog_loop(links: &Links, run_ms: u64) {
    let deadline = Instant::now() + Duration::from_millis(run_ms);
    loop {
        if links.done.load(Ordering::Acquire) || links.quiesced.load(Ordering::Acquire) {
            return;
        }
        if links.lock_failure().is_some() {
            // Already failing; the shutdown is underway. The census
            // still prints under EM2_NET_DEBUG_WEDGE so one failing
            // run shows every node's view, not just the first
            // watchdog's — the node holding the wedged frame is
            // rarely the one whose deadline fires first.
            if em2_model::env::flag("EM2_NET_DEBUG_WEDGE").unwrap_or(false) {
                eprintln!("[em2-net wedge] {}", links.wedge_census());
            }
            return;
        }
        if Instant::now() >= deadline {
            let b = links.inbox.get().map(|i| i.backlog()).unwrap_or_default();
            let detail = format!("local backlog: {}", links.wedge_census());
            // All nodes' deadlines fire within one tick of each other
            // and only the first error is kept, so the debug census
            // prints here too — the loser watchdogs' views would
            // otherwise vanish into the sympathetic-abort shutdown.
            if em2_model::env::flag("EM2_NET_DEBUG_WEDGE").unwrap_or(false) {
                eprintln!("[em2-net wedge] {detail}");
            }
            let err = if b.parked_barrier > 0 {
                ClusterError::BarrierTimeout {
                    waited_ms: run_ms,
                    detail,
                }
            } else {
                ClusterError::QuiesceTimeout {
                    waited_ms: run_ms,
                    detail,
                }
            };
            links.fail(err);
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Handoff watchdog (coordinator only): a handoff stuck in any phase
/// past the [`HANDOFF_TIMEOUT_ENV`] budget fails the cluster typed,
/// naming the handoff and its phase — a SIGKILL'd participant turns
/// into a bounded, explained error instead of a wedged quiesce.
fn handoff_watchdog_loop(links: &Links, timeout_ms: u64) {
    let tick = Duration::from_millis((timeout_ms / 8).clamp(5, 50));
    loop {
        if links.done.load(Ordering::Acquire)
            || links.quiesced.load(Ordering::Acquire)
            || links.lock_failure().is_some()
        {
            return;
        }
        let stuck = {
            let lg = links.coord_handoffs();
            lg.active.as_ref().and_then(|a| {
                (a.started.elapsed() >= Duration::from_millis(timeout_ms)).then(|| {
                    (
                        a.shard,
                        a.from,
                        a.to,
                        a.phase,
                        a.started.elapsed().as_millis(),
                    )
                })
            })
        };
        if let Some((shard, from, to, phase, waited)) = stuck {
            links.fail(ClusterError::Handoff {
                phase: phase.into(),
                detail: format!(
                    "handoff of shard {shard} (node {from} -> node {to}) made no progress \
                     for {waited} ms (budget {timeout_ms} ms)"
                ),
            });
            return;
        }
        std::thread::sleep(tick);
    }
}

/// Everything one node's run produces: the local runtime report plus
/// the wire telemetry. Cluster totals are the per-node counters summed
/// (each access executes on exactly one node; each heap word lives on
/// exactly one node).
#[derive(Debug)]
pub struct NetReport {
    /// This node's runtime report (flow counters, run histogram,
    /// wall clock — counters cover the work *executed here*).
    pub rt: RtReport,
    /// This node's wire telemetry.
    pub wire: WireSnapshot,
    /// This node's id.
    pub node: usize,
    /// Cluster size.
    pub nodes: usize,
    /// Transport the cluster ran on.
    pub transport: &'static str,
    /// The directory epoch at teardown: the cluster's initial epoch
    /// plus the number of committed shard handoffs this node observed.
    pub epoch: u64,
    /// Timing-plane metrics at quiesce (`None` when obs was off).
    /// Strictly telemetry: never part of any agreement comparison.
    pub obs: Option<em2_obs::Snapshot>,
}

/// A live cluster node: the local shard fleet plus its peer links.
pub struct NodeRuntime {
    rt: Option<Runtime>,
    links: Arc<Links>,
    readers: Vec<std::thread::JoinHandle<()>>,
    writers: Vec<std::thread::JoinHandle<()>>,
    handoff_watchdog: Option<std::thread::JoinHandle<()>>,
    node: usize,
    transport: &'static str,
}

fn connect_budget_ms(spec: &ClusterSpec) -> u64 {
    em2_model::env::parse::<u64>(CONNECT_TIMEOUT_ENV).unwrap_or(spec.timeouts.connect_ms)
}

impl NodeRuntime {
    /// Join the cluster as `node` and bring the local shard range up,
    /// over the transport named by `spec.kind`.
    ///
    /// Blocks until connected to every peer: the handshake tolerates
    /// peers launching in any order within the spec's connect budget
    /// (`connect_timeout_ms=`, overridable via
    /// [`CONNECT_TIMEOUT_ENV`]), retrying with jittered exponential
    /// backoff. `cfg.shards` must equal the spec's cluster-wide shard
    /// count; `registry` must know every task kind the cluster
    /// migrates, and `scheme_factory` / `barrier_quotas` must be
    /// identical on every node (the handshake can only check the
    /// topology).
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        spec: ClusterSpec,
        node: usize,
        cfg: RtConfig,
        name: impl Into<String>,
        placement: Arc<dyn Placement>,
        registry: TaskRegistry,
        scheme_factory: fn() -> Box<dyn em2_core::decision::DecisionScheme>,
        barrier_quotas: Vec<usize>,
    ) -> Result<NodeRuntime, ClusterError> {
        let transport = spec.kind.make();
        Self::start_with_transport(
            transport,
            spec,
            node,
            cfg,
            name,
            placement,
            registry,
            scheme_factory,
            barrier_quotas,
        )
    }

    /// [`NodeRuntime::start`] over an explicit transport — the seam
    /// the chaos harness injects [`crate::chaos::ChaosTransport`]
    /// through. `transport.kind()` should agree with `spec.kind` (it
    /// names the transport in reports).
    #[allow(clippy::too_many_arguments)]
    pub fn start_with_transport(
        transport: Box<dyn Transport>,
        spec: ClusterSpec,
        node: usize,
        cfg: RtConfig,
        name: impl Into<String>,
        placement: Arc<dyn Placement>,
        registry: TaskRegistry,
        scheme_factory: fn() -> Box<dyn em2_core::decision::DecisionScheme>,
        barrier_quotas: Vec<usize>,
    ) -> Result<NodeRuntime, ClusterError> {
        spec.validate()
            .map_err(|e| ClusterError::Config { detail: e })?;
        if node >= spec.num_nodes() {
            return Err(ClusterError::Config {
                detail: format!("node {node} not in a {}-node cluster", spec.num_nodes()),
            });
        }
        if cfg.shards != spec.total_shards {
            return Err(ClusterError::Config {
                detail: format!(
                    "cfg.shards ({}) != cluster shard count ({})",
                    cfg.shards, spec.total_shards
                ),
            });
        }
        let digest = spec.digest();
        let nodes = spec.num_nodes();
        let budget = Duration::from_millis(connect_budget_ms(&spec).max(1));
        let handshake_deadline = Instant::now() + budget;

        // Accept from higher ids, dial lower ids.
        let expected_inbound = nodes - 1 - node;
        let mut acceptor = if expected_inbound > 0 {
            Some(transport.listen(&spec.nodes[node].addr)?)
        } else {
            None
        };

        let mut conns: Vec<Option<Duplex>> = (0..nodes).map(|_| None).collect();
        for peer in 0..node {
            let mut duplex =
                connect_with_retry(&*transport, &spec.nodes[peer].addr, handshake_deadline)?;
            duplex
                .tx
                .send_frame(
                    &NetMsg::Hello {
                        node: node as u32,
                        wire_version: WIRE_VERSION,
                        topology: digest,
                    }
                    .encode(0),
                )
                .map_err(|e| handshake_err(format!("sending Hello to node {peer}: {e}")))?;
            match recv_handshake(&mut *duplex.rx, handshake_deadline)? {
                NetMsg::HelloAck {
                    node: n,
                    topology: t,
                } if n as usize == peer && t == digest => {}
                other => {
                    return Err(handshake_err(format!(
                        "node {peer} answered {other:?} (topology digest {digest:#x})"
                    )))
                }
            }
            conns[peer] = Some(duplex);
        }
        for _ in 0..expected_inbound {
            let mut duplex = acceptor
                .as_mut()
                .expect("listening")
                .accept_deadline(handshake_deadline)
                .map_err(|e| handshake_err(format!("accepting a peer: {e}")))?;
            let peer = match recv_handshake(&mut *duplex.rx, handshake_deadline)? {
                NetMsg::Hello {
                    node: n,
                    wire_version,
                    topology,
                } => {
                    if wire_version != WIRE_VERSION {
                        return Err(handshake_err(format!(
                            "node {n} speaks wire version {wire_version}, this build {WIRE_VERSION}"
                        )));
                    }
                    if topology != digest {
                        return Err(handshake_err(format!(
                            "node {n} has topology digest {topology:#x}, this node {digest:#x}"
                        )));
                    }
                    let n = n as usize;
                    if n <= node || n >= nodes || conns[n].is_some() {
                        return Err(handshake_err(format!("unexpected Hello from node {n}")));
                    }
                    n
                }
                other => return Err(handshake_err(format!("expected Hello, got {other:?}"))),
            };
            duplex
                .tx
                .send_frame(
                    &NetMsg::HelloAck {
                        node: node as u32,
                        topology: digest,
                    }
                    .encode(0),
                )
                .map_err(|e| handshake_err(format!("answering node {peer}: {e}")))?;
            conns[peer] = Some(duplex);
        }
        drop(acceptor);

        let epoch = Instant::now();
        let mut peers: Vec<Option<Peer>> = Vec::with_capacity(nodes);
        let mut rxs: Vec<(usize, Box<dyn FrameRx>)> = Vec::new();
        let mut txs: Vec<(usize, Box<dyn FrameTx>)> = Vec::new();
        for (i, c) in conns.into_iter().enumerate() {
            match c {
                None => peers.push(None),
                Some(mut d) => {
                    // Clear any handshake receive deadline: run-phase
                    // liveness belongs to heartbeats and the watchdog.
                    let _ = d.rx.set_recv_timeout(None);
                    peers.push(Some(Peer::new()));
                    rxs.push((i, d.rx));
                    txs.push((i, d.tx));
                }
            }
        }
        // The directory starts from the spec's static assignment at
        // the spec's initial epoch; handoffs move it from there. One
        // Arc is shared by the runtime's send path and the link layer.
        let owners: Vec<u32> = (0..spec.total_shards)
            .map(|s| spec.owner_of(s) as u32)
            .collect();
        let directory = Arc::new(ShardDirectory::new(spec.initial_epoch, &owners));
        let links = Arc::new(Links {
            me: node,
            directory: Arc::clone(&directory),
            handoff: Mutex::new(HandoffState {
                expecting: HashMap::new(),
                parked_bounces: Vec::new(),
                done_dest_hid: 0,
            }),
            peers,
            inbox: OnceLock::new(),
            coord: (node == 0).then(|| Coordinator {
                barriers: AtomicBarriers::new(barrier_quotas.clone()),
                state: Mutex::new(CoordState {
                    closed_nodes: 0,
                    submitted: 0,
                    retired: 0,
                    quiesced: false,
                }),
                handoffs: Mutex::new(HandoffLedger {
                    next_hid: 1,
                    active: None,
                    queue: VecDeque::new(),
                }),
            }),
            stats: WireStats::default(),
            coalesce_window: coalesce_window(),
            failure: Mutex::new(None),
            quiesced: AtomicBool::new(false),
            done: AtomicBool::new(false),
            epoch,
            obs: OnceLock::new(),
            spec,
        });

        let rt = Runtime::start_node(
            cfg,
            name,
            placement,
            scheme_factory,
            barrier_quotas,
            NodeRole {
                directory,
                node_id: node as u32,
                clustered_barriers: nodes > 1,
                link: Arc::clone(&links) as Arc<dyn NodeLink>,
            },
        );
        // Arm the timing plane before the reader/writer threads spawn,
        // so every link thread observes the registry (or its absence)
        // consistently.
        if let Some(obs) = rt.obs() {
            obs.set_node(node as u64);
            for (i, p) in links.peers.iter().enumerate() {
                if p.is_some() {
                    obs.register_peer(i as u64);
                    obs.node_event(em2_obs::EventKind::PeerUp, i as u64, 0);
                }
            }
            links.obs.set(obs).expect("obs set once");
        }
        links
            .inbox
            .set(rt.remote_inbox(registry, scheme_factory))
            .ok()
            .expect("inbox set once");

        let kind_name = transport.kind();
        let readers = rxs
            .into_iter()
            .map(|(peer, rx)| {
                let links = Arc::clone(&links);
                std::thread::Builder::new()
                    .name(format!("em2-net-rx-{peer}"))
                    .spawn(move || reader_loop(&links, peer, rx))
                    .expect("spawn reader")
            })
            .collect();
        let writers = txs
            .into_iter()
            .map(|(peer, tx)| {
                let links = Arc::clone(&links);
                std::thread::Builder::new()
                    .name(format!("em2-net-tx-{peer}"))
                    .spawn(move || writer_loop(&links, peer, tx))
                    .expect("spawn writer")
            })
            .collect();

        // The coordinator's handoff watchdog: bounds every handoff
        // phase so a participant that dies mid-transfer (SIGKILL, a
        // dropped Transfer frame) turns into a typed error naming the
        // phase instead of a wedged quiesce.
        let handoff_watchdog = (node == 0 && nodes > 1).then(|| {
            let links = Arc::clone(&links);
            let timeout_ms = handoff_timeout_ms();
            std::thread::Builder::new()
                .name("em2-net-handoff-watchdog".into())
                .spawn(move || handoff_watchdog_loop(&links, timeout_ms))
                .expect("spawn handoff watchdog")
        });

        Ok(NodeRuntime {
            rt: Some(rt),
            links,
            readers,
            writers,
            handoff_watchdog,
            node,
            transport: kind_name,
        })
    }

    /// This node's id.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Whether this node coordinates barriers and quiesce.
    pub fn is_coordinator(&self) -> bool {
        self.node == 0
    }

    /// Submit a task native to a locally owned shard, under a
    /// **cluster-unique** [`ThreadId`] (thread ids key guest-context
    /// admission and scheme tables across the whole cluster).
    pub fn submit(&mut self, spec: TaskSpec, thread: ThreadId) {
        self.rt
            .as_mut()
            .expect("node runtime is live")
            .submit_as(spec, thread);
    }

    /// Ask the coordinator to move `shard` to node `to`, live. The
    /// request is asynchronous: it enqueues on the coordinator's
    /// handoff ledger (directly on node 0, via
    /// [`NetMsg::HandoffRequest`] elsewhere) and commits in the
    /// background while the workload keeps running. Watch
    /// [`NodeRuntime::directory_epoch`] advance to observe commits; a
    /// handoff that cannot complete fails the run typed
    /// ([`ClusterError::Handoff`]) within the
    /// [`HANDOFF_TIMEOUT_ENV`] budget. A request naming the current
    /// owner is a no-op.
    ///
    /// # Panics
    /// Panics if `shard` or `to` is outside the cluster — misdirecting
    /// a handoff is a caller bug, not a runtime fault.
    pub fn request_handoff(&self, shard: usize, to: usize) {
        assert!(
            shard < self.links.spec.total_shards,
            "shard {shard} outside the cluster's {} shards",
            self.links.spec.total_shards
        );
        assert!(
            to < self.links.spec.num_nodes(),
            "node {to} outside the {}-node cluster",
            self.links.spec.num_nodes()
        );
        if self.node == 0 {
            self.links.coord_handoff_request(shard as u32, to as u32);
        } else {
            self.links.send_to(
                0,
                NetMsg::HandoffRequest {
                    shard: shard as u32,
                    to: to as u32,
                },
            );
        }
    }

    /// Drain this node: request a handoff of every shard it currently
    /// owns to node `to`, returning how many were requested. The node
    /// stays a full cluster member (it keeps forwarding, bouncing,
    /// and reporting) — it just ends up owning nothing, the state a
    /// rolling restart wants before taking the process down.
    pub fn request_drain(&self, to: usize) -> usize {
        let owned = self.links.directory.owned_shards(self.node as u32);
        for &s in &owned {
            self.request_handoff(s, to);
        }
        owned.len()
    }

    /// The directory epoch as this node currently sees it: the spec's
    /// `initial_epoch` plus the number of committed handoffs observed.
    pub fn directory_epoch(&self) -> u64 {
        self.links.directory.epoch()
    }

    /// Shards this node currently owns (ascending).
    pub fn owned_shards(&self) -> Vec<usize> {
        self.links.directory.owned_shards(self.node as u32)
    }

    /// Whether this node has already recorded a failure (the typed
    /// error itself is returned by [`NodeRuntime::finish`]).
    pub fn has_failed(&self) -> bool {
        self.links.lock_failure().is_some()
    }

    /// This node's live obs registry (`None` when obs is off). Sample
    /// [`em2_obs::NodeObs::snapshot`] from any thread while the run is
    /// in flight — it reads relaxed atomics, never locks the runtime.
    pub fn obs(&self) -> Option<Arc<em2_obs::NodeObs>> {
        self.rt.as_ref().and_then(|rt| rt.obs())
    }

    /// Close admission, run the cluster to quiesce, tear down the
    /// connections, and report.
    ///
    /// On a healthy cluster this returns the node's counters after the
    /// coordinator's quiesce decision. On a sick one — a lost peer, a
    /// corrupt frame, a barrier that never releases, a quiesce that
    /// never arrives within the spec's `timeout_ms` — it returns the
    /// first [`ClusterError`] this node observed, after waking and
    /// draining the local workers. Partial counters are worse than no
    /// counters, so no report ever carries a failed run's numbers.
    ///
    /// # Panics
    /// Panics only if a *task* panicked (the runtime's panic fan-out
    /// re-raises it) — infrastructure failures are all `Err`.
    pub fn finish(mut self) -> Result<NetReport, ClusterError> {
        let rt = self.rt.take().expect("finish called once");
        let run_ms = self.links.spec.timeouts.run_ms;
        let watchdog = (run_ms > 0).then(|| {
            let links = Arc::clone(&self.links);
            std::thread::Builder::new()
                .name("em2-net-watchdog".into())
                .spawn(move || watchdog_loop(&links, run_ms))
                .expect("spawn watchdog")
        });
        // Blocks until the coordinator's quiesce decision reaches the
        // local workers (via our reader threads) — or until fail()
        // forces the shutdown — and the workers exit.
        let report = rt.finish();
        self.links.done.store(true, Ordering::Release);
        if let Some(w) = watchdog {
            let _ = w.join();
        }
        if let Some(w) = self.handoff_watchdog.take() {
            let _ = w.join();
        }
        let failed = self.links.lock_failure().clone();
        // Teardown: push the Close sentinel after everything already
        // queued — each writer drains its FIFO up to the sentinel,
        // appends Bye iff the run was clean (so peers can tell our EOF
        // from a crash; a failed run's missing Bye *is* the failure
        // signal for peers that have not heard the abort yet), flushes
        // once, closes the connection, and exits.
        for p in self.links.peers.iter().flatten() {
            p.egress.push(EgressItem::Close {
                bye: failed.is_none(),
            });
            p.wake_writer();
        }
        let writer_panicked = self.writers.drain(..).any(|w| w.join().is_err());
        // Readers exit when peers close theirs (every node does this
        // after its own finish, deadline-bounded by its own watchdog).
        let reader_panicked = self.readers.drain(..).any(|r| r.join().is_err());
        if let Some(e) = failed {
            return Err(e);
        }
        if writer_panicked || reader_panicked {
            return Err(ClusterError::Io {
                detail: "a link thread panicked without recording a failure".into(),
            });
        }
        Ok(NetReport {
            rt: report,
            wire: self.links.snapshot(),
            node: self.node,
            nodes: self.links.spec.num_nodes(),
            transport: self.transport,
            epoch: self.links.directory.epoch(),
            // Taken after the workers *and* writers joined, so the
            // flush histograms are settled.
            obs: self.links.obs.get().map(|o| o.snapshot()),
        })
    }
}

fn handshake_err(msg: String) -> ClusterError {
    ClusterError::Handshake { detail: msg }
}

/// Receive one handshake message with the remaining connect budget as
/// the read deadline — a peer that connects and then goes silent must
/// not wedge the whole cluster's startup.
fn recv_handshake(rx: &mut dyn FrameRx, deadline: Instant) -> Result<NetMsg, ClusterError> {
    let left = deadline.saturating_duration_since(Instant::now());
    if left.is_zero() {
        return Err(handshake_err("connect budget exhausted".into()));
    }
    let _ = rx.set_recv_timeout(Some(left));
    let frame = rx
        .recv_frame()
        .map_err(|e| handshake_err(format!("receive failed: {e}")))?
        .ok_or_else(|| handshake_err("peer closed during handshake".into()))?;
    let (seq, msg) = NetMsg::decode(&frame).map_err(|e| handshake_err(e.to_string()))?;
    if seq != 0 {
        return Err(handshake_err(format!(
            "handshake frame carried sequence {seq}, expected 0"
        )));
    }
    Ok(msg)
}

/// Dial `addr` until it answers or the deadline passes, backing off
/// exponentially (1 ms doubling to a 200 ms cap) with deterministic
/// jitter seeded from the address — retries from many nodes spread
/// out instead of stampeding the listener in lockstep.
fn connect_with_retry(
    transport: &dyn Transport,
    addr: &str,
    deadline: Instant,
) -> Result<Duplex, ClusterError> {
    let t0 = Instant::now();
    let mut rng = DetRng::new(addr.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
    }));
    let mut delay_ms: u64 = 2;
    loop {
        match transport.connect(addr) {
            Ok(d) => return Ok(d),
            Err(e) => {
                let now = Instant::now();
                if now >= deadline {
                    return Err(ClusterError::ConnectTimeout {
                        addr: addr.to_string(),
                        waited_ms: t0.elapsed().as_millis() as u64,
                        detail: e.to_string(),
                    });
                }
                let jittered = delay_ms / 2 + rng.below(delay_ms / 2 + 1);
                let left = deadline.saturating_duration_since(now);
                std::thread::sleep(Duration::from_millis(jittered).min(left));
                delay_ms = (delay_ms * 2).min(200);
            }
        }
    }
}

/// Replay a traced workload across the cluster: this node submits one
/// [`em2_rt::TraceTask`] per workload thread whose **native shard it
/// owns**, under the thread's own id — together the nodes submit
/// exactly the tasks a single-process [`em2_rt::run_workload`] would,
/// and the summed counters must match it bit-for-bit (eviction-free
/// config; the E12 agreement property).
#[allow(clippy::too_many_arguments)]
pub fn run_workload_cluster(
    spec: ClusterSpec,
    node: usize,
    cfg: RtConfig,
    workload: &Arc<Workload>,
    placement: Arc<dyn Placement>,
    scheme_factory: fn() -> Box<dyn em2_core::decision::DecisionScheme>,
) -> Result<NetReport, ClusterError> {
    let transport = spec.kind.make();
    run_workload_cluster_with(
        transport,
        spec,
        node,
        cfg,
        workload,
        placement,
        scheme_factory,
    )
}

/// [`run_workload_cluster`] over an explicit transport (the chaos
/// harness's entry point).
#[allow(clippy::too_many_arguments)]
pub fn run_workload_cluster_with(
    transport: Box<dyn Transport>,
    spec: ClusterSpec,
    node: usize,
    cfg: RtConfig,
    workload: &Arc<Workload>,
    placement: Arc<dyn Placement>,
    scheme_factory: fn() -> Box<dyn em2_core::decision::DecisionScheme>,
) -> Result<NetReport, ClusterError> {
    run_workload_cluster_with_handoffs(
        transport,
        spec,
        node,
        cfg,
        workload,
        placement,
        scheme_factory,
        &[],
    )
}

/// [`run_workload_cluster_with`] plus **live shard handoffs**: after
/// submitting its tasks, node 0 requests each `(shard, to)` handoff
/// and blocks until every one that actually moves a shard has
/// committed (the directory epoch counts commits) *before* closing
/// admission — so the handoffs demonstrably overlap the workload, and
/// a wedged handoff surfaces as the coordinator watchdog's typed
/// error rather than a hang here. Other nodes ignore `handoffs`.
#[allow(clippy::too_many_arguments)]
pub fn run_workload_cluster_with_handoffs(
    transport: Box<dyn Transport>,
    spec: ClusterSpec,
    node: usize,
    cfg: RtConfig,
    workload: &Arc<Workload>,
    placement: Arc<dyn Placement>,
    scheme_factory: fn() -> Box<dyn em2_core::decision::DecisionScheme>,
    handoffs: &[(usize, usize)],
) -> Result<NetReport, ClusterError> {
    let quotas = em2_engine::barrier_quotas(workload.threads.iter().map(|t| t.barriers.len()));
    let (first, count) = spec.span(node);
    let initial_epoch = spec.initial_epoch;
    let mut nrt = NodeRuntime::start_with_transport(
        transport,
        spec,
        node,
        cfg,
        workload.name.clone(),
        placement,
        TaskRegistry::for_workload(Arc::clone(workload)),
        scheme_factory,
        quotas,
    )?;
    for t in &workload.threads {
        let native = t.native.index();
        if native >= first && native < first + count {
            nrt.submit(
                TaskSpec::new(
                    Box::new(em2_rt::TraceTask::new(Arc::clone(workload), t.thread)),
                    t.native,
                ),
                t.thread,
            );
        }
    }
    if node == 0 && !handoffs.is_empty() {
        // How many of the requests will actually commit (a request
        // naming the current owner is a no-op): simulate the
        // ownership walk the coordinator will take.
        let mut owners: Vec<usize> = (0..nrt.links.spec.total_shards)
            .map(|s| nrt.links.spec.owner_of(s))
            .collect();
        let mut expected: u64 = 0;
        for &(shard, to) in handoffs {
            if owners[shard] != to {
                owners[shard] = to;
                expected += 1;
            }
        }
        for &(shard, to) in handoffs {
            nrt.request_handoff(shard, to);
        }
        // Wait for the commits before closing admission: quiesce
        // cannot be declared while this node's Closed is unsent, so
        // polling here guarantees every handoff ran *during* the
        // workload. A stuck handoff trips the coordinator watchdog,
        // which flips has_failed and lets finish() report it typed.
        let target = initial_epoch + expected;
        while nrt.directory_epoch() < target && !nrt.has_failed() {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    nrt.finish()
}

/// Run a whole cluster inside one process (one OS thread per node
/// driving [`run_workload_cluster`]) — the loopback configuration the
/// E12 experiment and the agreement tests use. Reports are returned in
/// node order; the first node failure is the `Err`.
pub fn run_workload_cluster_in_process(
    spec: &ClusterSpec,
    cfg: &RtConfig,
    workload: &Arc<Workload>,
    placement: &Arc<dyn Placement>,
    scheme_factory: fn() -> Box<dyn em2_core::decision::DecisionScheme>,
) -> Result<Vec<NetReport>, ClusterError> {
    run_workload_cluster_in_process_with_handoffs(
        spec,
        cfg,
        workload,
        placement,
        scheme_factory,
        &[],
    )
}

/// [`run_workload_cluster_in_process`] with node 0 driving the given
/// live shard handoffs mid-workload (the E13 configuration): each
/// `(shard, to)` commits while tasks are still running, and the summed
/// counters must *still* match the single-process run bit-for-bit.
pub fn run_workload_cluster_in_process_with_handoffs(
    spec: &ClusterSpec,
    cfg: &RtConfig,
    workload: &Arc<Workload>,
    placement: &Arc<dyn Placement>,
    scheme_factory: fn() -> Box<dyn em2_core::decision::DecisionScheme>,
    handoffs: &[(usize, usize)],
) -> Result<Vec<NetReport>, ClusterError> {
    let mut reports: Vec<Result<NetReport, ClusterError>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..spec.num_nodes())
            .map(|node| {
                let spec = spec.clone();
                let cfg = cfg.clone();
                let workload = Arc::clone(workload);
                let placement = Arc::clone(placement);
                let handoffs: Vec<(usize, usize)> = if node == 0 {
                    handoffs.to_vec()
                } else {
                    Vec::new()
                };
                s.spawn(move || {
                    let transport = spec.kind.make();
                    run_workload_cluster_with_handoffs(
                        transport,
                        spec,
                        node,
                        cfg,
                        &workload,
                        placement,
                        scheme_factory,
                        &handoffs,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("node thread"))
            .collect()
    });
    let mut out = Vec::with_capacity(reports.len());
    for r in reports.drain(..) {
        out.push(r?);
    }
    Ok(out)
}
