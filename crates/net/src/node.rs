//! The node layer: membership, routing, distributed barriers, and
//! cluster-wide quiesce.
//!
//! A [`NodeRuntime`] wraps one `em2-rt` [`Runtime`] owning this
//! process's shard range and wires it to its peers:
//!
//! * **Connections.** Every node listens on its spec address; node `j`
//!   dials every `i < j` (with retry — nodes come up in any order) and
//!   opens with `Hello{node, wire_version, topology_digest}`; the
//!   acceptor verifies and answers `HelloAck`. Version or topology
//!   mismatch refuses the connection — two processes that disagree on
//!   shard ownership must not exchange a single shard message.
//! * **Routing.** The runtime hands any message addressed outside its
//!   shard range to [`em2_rt::NodeLink::forward`]; the link wraps it
//!   in [`NetMsg::Shard`] and ships it to the owner. One **reader
//!   thread per peer** decodes inbound frames and injects them through
//!   [`em2_rt::RemoteInbox`] — the executor's ordinary mailbox/waker
//!   seam; the workers never know a message crossed a process.
//! * **Barriers.** Node 0 is the coordinator: it holds the cluster's
//!   real [`AtomicBarriers`]. Arrivals anywhere park locally and
//!   travel to the coordinator; the quota-meeting arrival triggers a
//!   `BarrierRelease` fan-out, which each node mirrors into its local
//!   hub and parked shards.
//! * **Quiesce.** Submissions are counted per node and reported on
//!   close (`Closed{submitted}`); every retirement anywhere sends
//!   `Retired`. When all nodes have closed and `retired == submitted`,
//!   the coordinator broadcasts `Quiesce` and every runtime's workers
//!   stop. Because a task retires only after its final access, quiesce
//!   implies no shard message is in flight anywhere (DESIGN.md §9).
//!
//! Counter exactness: decisions, counters, and run histograms are
//! per-thread program-order functions (DESIGN.md §7); distribution
//! changes only *where* each access executes, so summing the nodes'
//! [`em2_rt::RtReport`] counters reproduces the single-process run
//! bit-for-bit — `crates/net/tests` pins this for loopback, UDS, and
//! TCP.

use crate::cluster::ClusterSpec;
use crate::proto::NetMsg;
use crate::transport::{Duplex, FrameRx, FrameTx};
use em2_engine::AtomicBarriers;
use em2_model::ThreadId;
use em2_placement::Placement;
use em2_rt::wire::{WireMsg, WIRE_VERSION};
use em2_rt::{NodeLink, NodeRole, RtConfig, RtReport, Runtime, TaskRegistry, TaskSpec};
use em2_trace::Workload;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// How long a dialing node keeps retrying a peer that has not bound
/// its endpoint yet.
const CONNECT_DEADLINE: Duration = Duration::from_secs(30);

/// Per-node wire telemetry (atomics: shard workers and readers bump
/// them concurrently).
#[derive(Default)]
struct WireStats {
    frames_tx: AtomicU64,
    bytes_tx: AtomicU64,
    frames_rx: AtomicU64,
    bytes_rx: AtomicU64,
    /// Migration/eviction envelopes shipped to another process.
    arrives_tx: AtomicU64,
    /// Serialized task-context bytes inside those envelopes — the
    /// "context bytes on the wire" the paper's §5 sizing argument is
    /// about.
    context_bytes_tx: AtomicU64,
}

/// A snapshot of one node's wire telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireSnapshot {
    /// Frames sent to peers.
    pub frames_tx: u64,
    /// Payload bytes sent (excluding the 4-byte frame header).
    pub bytes_tx: u64,
    /// Frames received from peers.
    pub frames_rx: u64,
    /// Payload bytes received.
    pub bytes_rx: u64,
    /// Task envelopes (migrations, evictions, seeds) sent cross-process.
    pub arrives_tx: u64,
    /// Serialized task-context bytes inside sent envelopes.
    pub context_bytes_tx: u64,
}

impl WireSnapshot {
    /// Element-wise sum (cluster totals).
    pub fn merge(&mut self, o: &WireSnapshot) {
        self.frames_tx += o.frames_tx;
        self.bytes_tx += o.bytes_tx;
        self.frames_rx += o.frames_rx;
        self.bytes_rx += o.bytes_rx;
        self.arrives_tx += o.arrives_tx;
        self.context_bytes_tx += o.context_bytes_tx;
    }
}

/// Cluster-global completion accounting (coordinator only).
struct CoordState {
    closed_nodes: usize,
    submitted: u64,
    retired: u64,
    quiesced: bool,
}

/// Coordinator-only state: the cluster's real barrier hub and the
/// quiesce ledger.
struct Coordinator {
    barriers: AtomicBarriers,
    state: Mutex<CoordState>,
}

struct Peer {
    /// `None` after this node closed the connection (post-quiesce).
    tx: Mutex<Option<Box<dyn FrameTx>>>,
}

/// Everything shared between shard workers (via [`NodeLink`]), reader
/// threads, and the [`NodeRuntime`] handle.
struct Links {
    spec: ClusterSpec,
    me: usize,
    /// Indexed by node id; `None` at `me`.
    peers: Vec<Option<Peer>>,
    /// Set once the runtime is up; readers start after that.
    inbox: OnceLock<em2_rt::RemoteInbox>,
    coord: Option<Coordinator>,
    stats: WireStats,
    /// First transport/protocol failure, if any; `finish` refuses to
    /// report counters from a cluster that lost a connection mid-run.
    failure: Mutex<Option<String>>,
}

impl Links {
    fn inbox(&self) -> &em2_rt::RemoteInbox {
        self.inbox.get().expect("inbox attached before readers run")
    }

    fn fail(&self, msg: String) {
        self.failure
            .lock()
            .expect("failure slot")
            .get_or_insert(msg);
        // Unstick the local workers; finish() will surface the error.
        if let Some(inbox) = self.inbox.get() {
            inbox.begin_shutdown();
        }
    }

    /// Encode and ship one control message to a peer.
    ///
    /// # Panics
    /// Panics on transport failure when called from a shard worker —
    /// the runtime's panic fan-out then shuts the local fleet down and
    /// `finish` propagates the error, which beats silently wedging a
    /// distributed barrier.
    fn send_to(&self, node: usize, msg: &NetMsg) {
        let payload = msg.encode();
        let peer = self.peers[node].as_ref().expect("no connection to self");
        let mut tx = peer.tx.lock().expect("peer tx");
        let r = match tx.as_mut() {
            Some(tx) => tx.send_frame(&payload),
            None => Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "connection already closed",
            )),
        };
        if let Err(e) = r {
            self.fail(format!("send to node {node} failed: {e}"));
            panic!("em2-net: send to node {node} failed: {e}");
        }
        self.stats.frames_tx.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_tx
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> WireSnapshot {
        WireSnapshot {
            frames_tx: self.stats.frames_tx.load(Ordering::Relaxed),
            bytes_tx: self.stats.bytes_tx.load(Ordering::Relaxed),
            frames_rx: self.stats.frames_rx.load(Ordering::Relaxed),
            bytes_rx: self.stats.bytes_rx.load(Ordering::Relaxed),
            arrives_tx: self.stats.arrives_tx.load(Ordering::Relaxed),
            context_bytes_tx: self.stats.context_bytes_tx.load(Ordering::Relaxed),
        }
    }

    // ---------------------------------------------- coordinator logic

    fn coord(&self) -> &Coordinator {
        self.coord.as_ref().expect("only node 0 coordinates")
    }

    fn coord_barrier_arrive(&self, k: usize) {
        if self.coord().barriers.arrive(k) == em2_engine::BarrierArrival::Completes {
            for node in 0..self.spec.num_nodes() {
                if node != self.me {
                    self.send_to(node, &NetMsg::BarrierRelease { k: k as u32 });
                }
            }
            self.inbox().release_barrier(k);
        }
    }

    fn coord_retired(&self) {
        let mut st = self.coord().state.lock().expect("coord state");
        st.retired += 1;
        self.maybe_quiesce(&mut st);
    }

    fn coord_closed(&self, submitted: u64) {
        let mut st = self.coord().state.lock().expect("coord state");
        st.closed_nodes += 1;
        assert!(
            st.closed_nodes <= self.spec.num_nodes(),
            "more Closed messages than nodes"
        );
        st.submitted += submitted;
        self.maybe_quiesce(&mut st);
    }

    /// Declare cluster quiesce exactly once, when every node has
    /// closed admission and every submitted task has retired. The
    /// gate order matters: `retired` may transiently exceed the
    /// `submitted` sum while some node's `Closed` is still queued, so
    /// the count comparison is only meaningful after all closes.
    fn maybe_quiesce(&self, st: &mut CoordState) {
        if st.quiesced || st.closed_nodes < self.spec.num_nodes() || st.retired != st.submitted {
            return;
        }
        st.quiesced = true;
        for node in 0..self.spec.num_nodes() {
            if node != self.me {
                self.send_to(node, &NetMsg::Quiesce);
            }
        }
        self.inbox().begin_shutdown();
    }
}

impl NodeLink for Links {
    fn forward(&self, to_shard: usize, msg: WireMsg) {
        let owner = self.spec.owner_of(to_shard);
        debug_assert_ne!(owner, self.me, "forward() is for non-local shards");
        if let WireMsg::Arrive(_) = &msg {
            self.stats.arrives_tx.fetch_add(1, Ordering::Relaxed);
            self.stats
                .context_bytes_tx
                .fetch_add(msg.context_payload_len() as u64, Ordering::Relaxed);
        }
        self.send_to(
            owner,
            &NetMsg::Shard {
                to: to_shard as u32,
                msg,
            },
        );
    }

    fn barrier_arrive(&self, k: usize) {
        if self.me == 0 {
            self.coord_barrier_arrive(k);
        } else {
            self.send_to(0, &NetMsg::BarrierArrive { k: k as u32 });
        }
    }

    fn task_retired(&self) {
        if self.me == 0 {
            self.coord_retired();
        } else {
            self.send_to(0, &NetMsg::Retired);
        }
    }

    fn node_closed(&self, submitted: u64) {
        if self.me == 0 {
            self.coord_closed(submitted);
        } else {
            self.send_to(0, &NetMsg::Closed { submitted });
        }
    }
}

/// One reader thread: drain a peer connection into the runtime until
/// clean EOF.
fn reader_loop(links: &Links, from_node: usize, mut rx: Box<dyn FrameRx>) {
    loop {
        let frame = match rx.recv_frame() {
            Ok(Some(f)) => f,
            Ok(None) => return, // peer closed cleanly
            Err(e) => {
                links.fail(format!("recv from node {from_node} failed: {e}"));
                return;
            }
        };
        links.stats.frames_rx.fetch_add(1, Ordering::Relaxed);
        links
            .stats
            .bytes_rx
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        let msg = match NetMsg::decode(&frame) {
            Ok(m) => m,
            Err(e) => {
                links.fail(format!("bad frame from node {from_node}: {e}"));
                return;
            }
        };
        match msg {
            NetMsg::Shard { to, msg } => {
                let to = to as usize;
                // Pre-check ownership so a misrouting (or
                // version-skewed) peer produces a named diagnostic
                // instead of tripping the inbox's internal assert.
                if to >= links.spec.total_shards || links.spec.owner_of(to) != links.me {
                    links.fail(format!(
                        "node {from_node} misrouted a message for shard {to}, which node {} \
                         does not own",
                        links.me
                    ));
                    return;
                }
                if let Err(e) = links.inbox().deliver(to, msg) {
                    links.fail(format!("undeliverable message from node {from_node}: {e}"));
                    return;
                }
            }
            NetMsg::BarrierArrive { k } => {
                if links.me != 0 {
                    links.fail(format!(
                        "node {from_node} sent BarrierArrive to non-coordinator"
                    ));
                    return;
                }
                links.coord_barrier_arrive(k as usize);
            }
            NetMsg::BarrierRelease { k } => {
                links.inbox().release_barrier(k as usize);
            }
            NetMsg::Retired => {
                if links.me != 0 {
                    links.fail(format!("node {from_node} sent Retired to non-coordinator"));
                    return;
                }
                links.coord_retired();
            }
            NetMsg::Closed { submitted } => {
                if links.me != 0 {
                    links.fail(format!("node {from_node} sent Closed to non-coordinator"));
                    return;
                }
                links.coord_closed(submitted);
            }
            NetMsg::Quiesce => {
                links.inbox().begin_shutdown();
                // Keep reading to EOF so the close is clean.
            }
            NetMsg::Hello { .. } | NetMsg::HelloAck { .. } => {
                links.fail(format!("node {from_node} re-sent a handshake mid-run"));
                return;
            }
        }
    }
}

/// Everything one node's run produces: the local runtime report plus
/// the wire telemetry. Cluster totals are the per-node counters summed
/// (each access executes on exactly one node; each heap word lives on
/// exactly one node).
#[derive(Debug)]
pub struct NetReport {
    /// This node's runtime report (flow counters, run histogram,
    /// wall clock — counters cover the work *executed here*).
    pub rt: RtReport,
    /// This node's wire telemetry.
    pub wire: WireSnapshot,
    /// This node's id.
    pub node: usize,
    /// Cluster size.
    pub nodes: usize,
    /// Transport the cluster ran on.
    pub transport: &'static str,
}

/// A live cluster node: the local shard fleet plus its peer links.
pub struct NodeRuntime {
    rt: Option<Runtime>,
    links: Arc<Links>,
    readers: Vec<std::thread::JoinHandle<()>>,
    node: usize,
    transport: &'static str,
}

impl NodeRuntime {
    /// Join the cluster as `node` and bring the local shard range up.
    ///
    /// Blocks until connected to every peer (the handshake tolerates
    /// peers launching in any order within a 30-second dial deadline).
    /// `cfg.shards` must equal the spec's cluster-wide shard count;
    /// `registry` must know every task kind the cluster migrates, and
    /// `scheme_factory` / `barrier_quotas` must be identical on every
    /// node (the handshake can only check the topology).
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        spec: ClusterSpec,
        node: usize,
        cfg: RtConfig,
        name: impl Into<String>,
        placement: Arc<dyn Placement>,
        registry: TaskRegistry,
        scheme_factory: fn() -> Box<dyn em2_core::decision::DecisionScheme>,
        barrier_quotas: Vec<usize>,
    ) -> io::Result<NodeRuntime> {
        spec.validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        if node >= spec.num_nodes() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("node {node} not in a {}-node cluster", spec.num_nodes()),
            ));
        }
        if cfg.shards != spec.total_shards {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "cfg.shards ({}) != cluster shard count ({})",
                    cfg.shards, spec.total_shards
                ),
            ));
        }
        let transport = spec.kind.make();
        let digest = spec.digest();
        let nodes = spec.num_nodes();

        // Accept from higher ids, dial lower ids.
        let expected_inbound = nodes - 1 - node;
        let mut acceptor = if expected_inbound > 0 {
            Some(transport.listen(&spec.nodes[node].addr)?)
        } else {
            None
        };

        let mut conns: Vec<Option<Duplex>> = (0..nodes).map(|_| None).collect();
        for peer in 0..node {
            let mut duplex = connect_with_retry(&*transport, &spec.nodes[peer].addr)?;
            duplex.tx.send_frame(
                &NetMsg::Hello {
                    node: node as u32,
                    wire_version: WIRE_VERSION,
                    topology: digest,
                }
                .encode(),
            )?;
            match recv_msg(&mut *duplex.rx)? {
                NetMsg::HelloAck {
                    node: n,
                    topology: t,
                } if n as usize == peer && t == digest => {}
                other => {
                    return Err(handshake_err(format!(
                        "node {peer} answered {other:?} (topology digest {digest:#x})"
                    )))
                }
            }
            conns[peer] = Some(duplex);
        }
        for _ in 0..expected_inbound {
            let mut duplex = acceptor.as_mut().expect("listening").accept()?;
            let peer = match recv_msg(&mut *duplex.rx)? {
                NetMsg::Hello {
                    node: n,
                    wire_version,
                    topology,
                } => {
                    if wire_version != WIRE_VERSION {
                        return Err(handshake_err(format!(
                            "node {n} speaks wire version {wire_version}, this build {WIRE_VERSION}"
                        )));
                    }
                    if topology != digest {
                        return Err(handshake_err(format!(
                            "node {n} has topology digest {topology:#x}, this node {digest:#x}"
                        )));
                    }
                    let n = n as usize;
                    if n <= node || n >= nodes || conns[n].is_some() {
                        return Err(handshake_err(format!("unexpected Hello from node {n}")));
                    }
                    n
                }
                other => return Err(handshake_err(format!("expected Hello, got {other:?}"))),
            };
            duplex.tx.send_frame(
                &NetMsg::HelloAck {
                    node: node as u32,
                    topology: digest,
                }
                .encode(),
            )?;
            conns[peer] = Some(duplex);
        }
        drop(acceptor);

        let mut peers: Vec<Option<Peer>> = Vec::with_capacity(nodes);
        let mut rxs: Vec<(usize, Box<dyn FrameRx>)> = Vec::new();
        for (i, c) in conns.into_iter().enumerate() {
            match c {
                None => peers.push(None),
                Some(d) => {
                    peers.push(Some(Peer {
                        tx: Mutex::new(Some(d.tx)),
                    }));
                    rxs.push((i, d.rx));
                }
            }
        }
        let links = Arc::new(Links {
            me: node,
            peers,
            inbox: OnceLock::new(),
            coord: (node == 0).then(|| Coordinator {
                barriers: AtomicBarriers::new(barrier_quotas.clone()),
                state: Mutex::new(CoordState {
                    closed_nodes: 0,
                    submitted: 0,
                    retired: 0,
                    quiesced: false,
                }),
            }),
            stats: WireStats::default(),
            failure: Mutex::new(None),
            spec,
        });

        let (first_shard, local_shards) = links.spec.span(node);
        let rt = Runtime::start_node(
            cfg,
            name,
            placement,
            scheme_factory,
            barrier_quotas,
            NodeRole {
                first_shard,
                local_shards,
                clustered_barriers: nodes > 1,
                link: Arc::clone(&links) as Arc<dyn NodeLink>,
            },
        );
        links
            .inbox
            .set(rt.remote_inbox(registry, scheme_factory))
            .ok()
            .expect("inbox set once");

        let kind_name = links.spec.kind.name();
        let readers = rxs
            .into_iter()
            .map(|(peer, rx)| {
                let links = Arc::clone(&links);
                std::thread::Builder::new()
                    .name(format!("em2-net-rx-{peer}"))
                    .spawn(move || reader_loop(&links, peer, rx))
                    .expect("spawn reader")
            })
            .collect();

        Ok(NodeRuntime {
            rt: Some(rt),
            links,
            readers,
            node,
            transport: kind_name,
        })
    }

    /// This node's id.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Whether this node coordinates barriers and quiesce.
    pub fn is_coordinator(&self) -> bool {
        self.node == 0
    }

    /// Submit a task native to a locally owned shard, under a
    /// **cluster-unique** [`ThreadId`] (thread ids key guest-context
    /// admission and scheme tables across the whole cluster).
    pub fn submit(&mut self, spec: TaskSpec, thread: ThreadId) {
        self.rt
            .as_mut()
            .expect("node runtime is live")
            .submit_as(spec, thread);
    }

    /// Close admission, run the cluster to quiesce, tear down the
    /// connections, and report.
    ///
    /// # Panics
    /// Panics if a task panicked, a connection failed mid-run, or a
    /// peer sent a malformed frame — partial counters are worse than
    /// no counters.
    pub fn finish(mut self) -> NetReport {
        let rt = self.rt.take().expect("finish called once");
        // Blocks until the coordinator's quiesce decision reaches the
        // local workers (via our reader threads) and they exit.
        let report = rt.finish();
        // Close our write halves: peers' readers see clean EOF.
        for p in self.links.peers.iter().flatten() {
            let mut tx = p.tx.lock().expect("peer tx");
            if let Some(t) = tx.as_mut() {
                let _ = t.close();
            }
            *tx = None;
        }
        // Readers exit when peers close theirs (every node does this
        // after its own finish).
        let reader_panicked = self.readers.drain(..).any(|r| r.join().is_err());
        // Surface the recorded diagnostic first: a panicking reader
        // (bad peer frame, transport death mid-dispatch) records *why*
        // in `failure` before unwinding, and that message names the
        // peer — far more actionable than the bare join error.
        if let Some(e) = self.links.failure.lock().expect("failure slot").take() {
            panic!("em2-net: cluster run failed: {e}");
        }
        assert!(
            !reader_panicked,
            "em2-net: a reader thread panicked without recording a failure"
        );
        NetReport {
            rt: report,
            wire: self.links.snapshot(),
            node: self.node,
            nodes: self.links.spec.num_nodes(),
            transport: self.transport,
        }
    }
}

fn handshake_err(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("handshake: {msg}"))
}

fn recv_msg(rx: &mut dyn FrameRx) -> io::Result<NetMsg> {
    let frame = rx
        .recv_frame()?
        .ok_or_else(|| handshake_err("peer closed during handshake".into()))?;
    NetMsg::decode(&frame).map_err(|e| handshake_err(e.to_string()))
}

fn connect_with_retry(
    transport: &dyn crate::transport::Transport,
    addr: &str,
) -> io::Result<Duplex> {
    let deadline = Instant::now() + CONNECT_DEADLINE;
    loop {
        match transport.connect(addr) {
            Ok(d) => return Ok(d),
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                return Err(io::Error::new(
                    e.kind(),
                    format!("connect to {addr:?} timed out: {e}"),
                ))
            }
        }
    }
}

/// Replay a traced workload across the cluster: this node submits one
/// [`em2_rt::TraceTask`] per workload thread whose **native shard it
/// owns**, under the thread's own id — together the nodes submit
/// exactly the tasks a single-process [`em2_rt::run_workload`] would,
/// and the summed counters must match it bit-for-bit (eviction-free
/// config; the E12 agreement property).
#[allow(clippy::too_many_arguments)]
pub fn run_workload_cluster(
    spec: ClusterSpec,
    node: usize,
    cfg: RtConfig,
    workload: &Arc<Workload>,
    placement: Arc<dyn Placement>,
    scheme_factory: fn() -> Box<dyn em2_core::decision::DecisionScheme>,
) -> io::Result<NetReport> {
    let quotas = em2_engine::barrier_quotas(workload.threads.iter().map(|t| t.barriers.len()));
    let (first, count) = spec.span(node);
    let mut nrt = NodeRuntime::start(
        spec,
        node,
        cfg,
        workload.name.clone(),
        placement,
        TaskRegistry::for_workload(Arc::clone(workload)),
        scheme_factory,
        quotas,
    )?;
    for t in &workload.threads {
        let native = t.native.index();
        if native >= first && native < first + count {
            nrt.submit(
                TaskSpec::new(
                    Box::new(em2_rt::TraceTask::new(Arc::clone(workload), t.thread)),
                    t.native,
                ),
                t.thread,
            );
        }
    }
    Ok(nrt.finish())
}

/// Run a whole cluster inside one process (one OS thread per node
/// driving [`run_workload_cluster`]) — the loopback configuration the
/// E12 experiment and the agreement tests use. Reports are returned in
/// node order.
pub fn run_workload_cluster_in_process(
    spec: &ClusterSpec,
    cfg: &RtConfig,
    workload: &Arc<Workload>,
    placement: &Arc<dyn Placement>,
    scheme_factory: fn() -> Box<dyn em2_core::decision::DecisionScheme>,
) -> io::Result<Vec<NetReport>> {
    let mut reports: Vec<io::Result<NetReport>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..spec.num_nodes())
            .map(|node| {
                let spec = spec.clone();
                let cfg = cfg.clone();
                let workload = Arc::clone(workload);
                let placement = Arc::clone(placement);
                s.spawn(move || {
                    run_workload_cluster(spec, node, cfg, &workload, placement, scheme_factory)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("node thread"))
            .collect()
    });
    let mut out = Vec::with_capacity(reports.len());
    for r in reports.drain(..) {
        out.push(r?);
    }
    Ok(out)
}
