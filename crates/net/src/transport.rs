//! Byte-frame transports: loopback queues, Unix-domain sockets, TCP.
//!
//! A [`Transport`] moves opaque length-prefixed frames between two
//! endpoints; everything above it (handshake, message codec, routing)
//! is transport-agnostic. Three implementations ship:
//!
//! * [`LoopbackTransport`] — in-process channel pairs under named
//!   endpoints. Frames still pass through the full encode → decode
//!   path, so a multi-"node" loopback cluster exercises every byte of
//!   the wire format without sockets — this is what keeps the E11
//!   agreement property testable in-process (DESIGN.md §9).
//! * [`UdsTransport`] — `SOCK_STREAM` Unix-domain sockets (Unix only);
//!   the default for co-located multi-process clusters.
//! * [`TcpTransport`] — TCP with `TCP_NODELAY`; crosses hosts.
//!
//! Framing on stream transports is `[u32 LE length][payload]`.
//! [`FrameRx::recv_frame`] distinguishes a clean close at a frame
//! boundary (`Ok(None)`) from a mid-frame truncation (`Err`).

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::sync::mpsc;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Hard ceiling on a frame's payload (32 MiB): a larger length prefix
/// is corruption, not a payload.
pub const MAX_FRAME: usize = 32 << 20;

/// Bytes of stream framing per frame (the `u32 LE` length prefix).
/// Telemetry that reports *wire* bytes — rather than payload bytes —
/// adds this per frame; loopback channels carry no header but are
/// accounted the same way so obs numbers are comparable across
/// transports.
pub const FRAME_HEADER_BYTES: usize = 4;

/// The typed rejection every transport returns for a frame larger
/// than [`MAX_FRAME`] — an error, not a panic, so a runaway payload
/// upstream surfaces as a recorded cluster failure.
fn oversize_err(len: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        format!("frame payload {len} exceeds the {MAX_FRAME}-byte cap"),
    )
}

/// The sending half of one connection.
pub trait FrameTx: Send {
    /// Ship one frame (blocking; a full socket buffer back-pressures
    /// the caller, which is the cluster's flow control). A payload
    /// over [`MAX_FRAME`] is a typed [`io::ErrorKind::InvalidInput`]
    /// error.
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<()>;

    /// Ship a batch of frames, flushing **once** where the carrier
    /// allows it. Semantically identical to calling
    /// [`FrameTx::send_frame`] per payload in order — same frames,
    /// same boundaries on the wire, same errors — but stream
    /// transports buffer the whole batch and pay a single
    /// `write`/`flush`, which is the egress pipeline's
    /// frames-per-syscall win. The default loops (message-granular
    /// carriers like the loopback channel deliver per frame anyway).
    fn send_frames(&mut self, payloads: &[Vec<u8>]) -> io::Result<()> {
        for p in payloads {
            self.send_frame(p)?;
        }
        Ok(())
    }

    /// Signal end-of-stream to the peer. Merely dropping a socket
    /// write half is not enough: the read half is a `try_clone` of the
    /// same socket, so the connection stays open until an explicit
    /// `shutdown(Write)`. Loopback channels close on drop; this
    /// default covers them.
    fn close(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The receiving half of one connection.
pub trait FrameRx: Send {
    /// Receive the next frame. `Ok(None)` means the peer closed
    /// cleanly at a frame boundary; a mid-frame close is an error.
    /// With a receive timeout set, an idle expiry is an error of kind
    /// [`io::ErrorKind::WouldBlock`] or [`io::ErrorKind::TimedOut`]
    /// (platform-dependent) — the connection stays usable.
    fn recv_frame(&mut self) -> io::Result<Option<Vec<u8>>>;

    /// Bound how long [`FrameRx::recv_frame`] may block (`None` =
    /// forever). Deadline-sensitive phases (the handshake) set this;
    /// the default is a no-op for carriers that cannot time out.
    fn set_recv_timeout(&mut self, _timeout: Option<Duration>) -> io::Result<()> {
        Ok(())
    }
}

/// One bidirectional connection, split into halves so a dedicated
/// reader thread can own `rx` while shard workers share `tx`.
pub struct Duplex {
    /// Sending half.
    pub tx: Box<dyn FrameTx>,
    /// Receiving half.
    pub rx: Box<dyn FrameRx>,
}

/// Accepts inbound connections on a listening endpoint.
pub trait Acceptor: Send {
    /// Block until the next peer connects.
    fn accept(&mut self) -> io::Result<Duplex>;

    /// Block until the next peer connects or `deadline` passes
    /// (expiry is an [`io::ErrorKind::TimedOut`] error). The default
    /// ignores the deadline; every shipped transport overrides it —
    /// this is what bounds a handshake whose dialer never shows up.
    fn accept_deadline(&mut self, deadline: Instant) -> io::Result<Duplex> {
        let _ = deadline;
        self.accept()
    }
}

fn accept_timeout_err() -> io::Error {
    io::Error::new(
        io::ErrorKind::TimedOut,
        "no inbound connection before the accept deadline",
    )
}

/// A way to move frames between endpoints, named by opaque address
/// strings (a socket path, `host:port`, or a loopback endpoint name).
pub trait Transport: Send + Sync {
    /// Short name for reports (`"loopback"`, `"uds"`, `"tcp"`).
    fn kind(&self) -> &'static str;

    /// Bind a listening endpoint.
    fn listen(&self, addr: &str) -> io::Result<Box<dyn Acceptor>>;

    /// Connect to a listening endpoint. Fails fast when nothing
    /// listens (callers retry with a deadline — cluster nodes come up
    /// in arbitrary order).
    fn connect(&self, addr: &str) -> io::Result<Duplex>;
}

// ---------------------------------------------------------- streams

/// Half-close support for socket types whose read half is a
/// `try_clone` of the same file description.
trait ShutdownWrite {
    fn shutdown_write(&self) -> io::Result<()>;
}

impl ShutdownWrite for std::net::TcpStream {
    fn shutdown_write(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Write)
    }
}

#[cfg(unix)]
impl ShutdownWrite for std::os::unix::net::UnixStream {
    fn shutdown_write(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Write)
    }
}

/// Read-timeout support for socket types (the kernel-level timer
/// backing [`FrameRx::set_recv_timeout`]).
trait SetReadTimeout {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;
}

impl SetReadTimeout for std::net::TcpStream {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        std::net::TcpStream::set_read_timeout(self, timeout)
    }
}

#[cfg(unix)]
impl SetReadTimeout for std::os::unix::net::UnixStream {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        std::os::unix::net::UnixStream::set_read_timeout(self, timeout)
    }
}

#[cfg(test)]
impl SetReadTimeout for std::io::Cursor<Vec<u8>> {
    fn set_read_timeout(&self, _timeout: Option<Duration>) -> io::Result<()> {
        Ok(())
    }
}

struct StreamTx<W: Write + Send + ShutdownWrite> {
    w: BufWriter<W>,
}

impl<W: Write + Send + ShutdownWrite> StreamTx<W> {
    fn write_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_FRAME {
            return Err(oversize_err(payload.len()));
        }
        self.w.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.w.write_all(payload)
    }
}

impl<W: Write + Send + ShutdownWrite> FrameTx for StreamTx<W> {
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        self.write_frame(payload)?;
        self.w.flush()
    }

    fn send_frames(&mut self, payloads: &[Vec<u8>]) -> io::Result<()> {
        // All frames into the BufWriter, one flush: the coalescing
        // half of the zero-syscall egress path. (A batch larger than
        // the buffer spills early inside `write_all` — the syscall
        // count stays bounded by the batch's byte size, not its frame
        // count.)
        for p in payloads {
            self.write_frame(p)?;
        }
        self.w.flush()
    }

    fn close(&mut self) -> io::Result<()> {
        self.w.flush()?;
        self.w.get_ref().shutdown_write()
    }
}

struct StreamRx<R: Read + Send + SetReadTimeout> {
    r: BufReader<R>,
}

impl<R: Read + Send + SetReadTimeout> FrameRx for StreamRx<R> {
    fn recv_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        let mut len = [0u8; 4];
        // A clean EOF before the first length byte is a graceful
        // close; anything partial is a truncated frame.
        let mut got = 0;
        while got < 4 {
            match self.r.read(&mut len[got..])? {
                0 if got == 0 => return Ok(None),
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed inside a frame header",
                    ))
                }
                n => got += n,
            }
        }
        let n = u32::from_le_bytes(len) as usize;
        if n > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {n} exceeds the {MAX_FRAME}-byte cap"),
            ));
        }
        let mut payload = vec![0u8; n];
        self.r.read_exact(&mut payload)?;
        Ok(Some(payload))
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.r.get_ref().set_read_timeout(timeout)
    }
}

// -------------------------------------------------------------- TCP

/// TCP transport (`addr` = `host:port`). `TCP_NODELAY` is set on both
/// ends: frames are small and latency-critical.
#[derive(Clone, Copy, Debug, Default)]
pub struct TcpTransport;

struct TcpAcceptor {
    listener: std::net::TcpListener,
}

impl Acceptor for TcpAcceptor {
    fn accept(&mut self) -> io::Result<Duplex> {
        let (stream, _) = self.listener.accept()?;
        tcp_duplex(stream)
    }

    fn accept_deadline(&mut self, deadline: Instant) -> io::Result<Duplex> {
        // Listeners have no kernel accept timeout; poll nonblocking.
        self.listener.set_nonblocking(true)?;
        let r = loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    break tcp_duplex(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        break Err(accept_timeout_err());
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => break Err(e),
            }
        };
        let _ = self.listener.set_nonblocking(false);
        r
    }
}

fn tcp_duplex(stream: std::net::TcpStream) -> io::Result<Duplex> {
    stream.set_nodelay(true)?;
    let rd = stream.try_clone()?;
    Ok(Duplex {
        tx: Box::new(StreamTx {
            w: BufWriter::new(stream),
        }),
        rx: Box::new(StreamRx {
            r: BufReader::new(rd),
        }),
    })
}

impl Transport for TcpTransport {
    fn kind(&self) -> &'static str {
        "tcp"
    }

    fn listen(&self, addr: &str) -> io::Result<Box<dyn Acceptor>> {
        Ok(Box::new(TcpAcceptor {
            listener: std::net::TcpListener::bind(addr)?,
        }))
    }

    fn connect(&self, addr: &str) -> io::Result<Duplex> {
        tcp_duplex(std::net::TcpStream::connect(addr)?)
    }
}

// -------------------------------------------------------------- UDS

/// Unix-domain socket transport (`addr` = filesystem path). Unix
/// only; on other platforms every operation returns
/// [`io::ErrorKind::Unsupported`].
#[derive(Clone, Copy, Debug, Default)]
pub struct UdsTransport;

#[cfg(unix)]
struct UdsAcceptor {
    listener: std::os::unix::net::UnixListener,
    path: String,
}

#[cfg(unix)]
impl Acceptor for UdsAcceptor {
    fn accept(&mut self) -> io::Result<Duplex> {
        let (stream, _) = self.listener.accept()?;
        uds_duplex(stream)
    }

    fn accept_deadline(&mut self, deadline: Instant) -> io::Result<Duplex> {
        self.listener.set_nonblocking(true)?;
        let r = loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    break uds_duplex(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        break Err(accept_timeout_err());
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => break Err(e),
            }
        };
        let _ = self.listener.set_nonblocking(false);
        r
    }
}

#[cfg(unix)]
impl Drop for UdsAcceptor {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(unix)]
fn uds_duplex(stream: std::os::unix::net::UnixStream) -> io::Result<Duplex> {
    let rd = stream.try_clone()?;
    Ok(Duplex {
        tx: Box::new(StreamTx {
            w: BufWriter::new(stream),
        }),
        rx: Box::new(StreamRx {
            r: BufReader::new(rd),
        }),
    })
}

impl Transport for UdsTransport {
    fn kind(&self) -> &'static str {
        "uds"
    }

    #[cfg(unix)]
    fn listen(&self, addr: &str) -> io::Result<Box<dyn Acceptor>> {
        // A stale socket file from a dead process would fail the bind.
        let _ = std::fs::remove_file(addr);
        Ok(Box::new(UdsAcceptor {
            listener: std::os::unix::net::UnixListener::bind(addr)?,
            path: addr.to_string(),
        }))
    }

    #[cfg(unix)]
    fn connect(&self, addr: &str) -> io::Result<Duplex> {
        uds_duplex(std::os::unix::net::UnixStream::connect(addr)?)
    }

    #[cfg(not(unix))]
    fn listen(&self, _addr: &str) -> io::Result<Box<dyn Acceptor>> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "unix-domain sockets are unavailable on this platform",
        ))
    }

    #[cfg(not(unix))]
    fn connect(&self, _addr: &str) -> io::Result<Duplex> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "unix-domain sockets are unavailable on this platform",
        ))
    }
}

// --------------------------------------------------------- loopback

type PendingDuplex = mpsc::Sender<Duplex>;

fn loopback_registry() -> &'static Mutex<HashMap<String, PendingDuplex>> {
    static REG: OnceLock<Mutex<HashMap<String, PendingDuplex>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(HashMap::new()))
}

/// In-process transport: endpoints live in a process-global name
/// registry and connections are paired byte-frame channels. Every
/// frame still round-trips through the codec, so this is the
/// full wire path minus the kernel.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoopbackTransport;

struct ChanTx(mpsc::Sender<Vec<u8>>);

impl FrameTx for ChanTx {
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_FRAME {
            return Err(oversize_err(payload.len()));
        }
        self.0
            .send(payload.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "loopback peer closed"))
    }
}

struct ChanRx {
    rx: mpsc::Receiver<Vec<u8>>,
    timeout: Option<Duration>,
}

impl FrameRx for ChanRx {
    fn recv_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        match self.timeout {
            // A dropped sender is the loopback clean close.
            None => Ok(self.rx.recv().ok()),
            Some(t) => match self.rx.recv_timeout(t) {
                Ok(f) => Ok(Some(f)),
                Err(mpsc::RecvTimeoutError::Disconnected) => Ok(None),
                Err(mpsc::RecvTimeoutError::Timeout) => Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "loopback receive timed out",
                )),
            },
        }
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.timeout = timeout;
        Ok(())
    }
}

struct LoopbackAcceptor {
    addr: String,
    pending: mpsc::Receiver<Duplex>,
}

impl Acceptor for LoopbackAcceptor {
    fn accept(&mut self) -> io::Result<Duplex> {
        self.pending
            .recv()
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "loopback listener torn down"))
    }

    fn accept_deadline(&mut self, deadline: Instant) -> io::Result<Duplex> {
        let wait = deadline.saturating_duration_since(Instant::now());
        match self.pending.recv_timeout(wait) {
            Ok(d) => Ok(d),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(accept_timeout_err()),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "loopback listener torn down",
            )),
        }
    }
}

impl Drop for LoopbackAcceptor {
    fn drop(&mut self) {
        loopback_registry()
            .lock()
            .expect("loopback registry")
            .remove(&self.addr);
    }
}

impl Transport for LoopbackTransport {
    fn kind(&self) -> &'static str {
        "loopback"
    }

    fn listen(&self, addr: &str) -> io::Result<Box<dyn Acceptor>> {
        let (tx, rx) = mpsc::channel();
        let mut reg = loopback_registry().lock().expect("loopback registry");
        if reg.contains_key(addr) {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                format!("loopback endpoint {addr:?} already listening"),
            ));
        }
        reg.insert(addr.to_string(), tx);
        Ok(Box::new(LoopbackAcceptor {
            addr: addr.to_string(),
            pending: rx,
        }))
    }

    fn connect(&self, addr: &str) -> io::Result<Duplex> {
        let pending = {
            let reg = loopback_registry().lock().expect("loopback registry");
            reg.get(addr).cloned()
        };
        let Some(pending) = pending else {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("no loopback listener at {addr:?}"),
            ));
        };
        let (a_tx, a_rx) = mpsc::channel();
        let (b_tx, b_rx) = mpsc::channel();
        let theirs = Duplex {
            tx: Box::new(ChanTx(b_tx)),
            rx: Box::new(ChanRx {
                rx: a_rx,
                timeout: None,
            }),
        };
        pending.send(theirs).map_err(|_| {
            io::Error::new(io::ErrorKind::ConnectionRefused, "loopback listener gone")
        })?;
        Ok(Duplex {
            tx: Box::new(ChanTx(a_tx)),
            rx: Box::new(ChanRx {
                rx: b_rx,
                timeout: None,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(transport: &dyn Transport, addr: &str) {
        let mut acceptor = transport.listen(addr).expect("listen");
        let t = std::thread::spawn({
            let payload = vec![7u8; 100_000];
            let kind = transport.kind().to_string();
            move || {
                let mut server = acceptor.accept().expect("accept");
                let got = server.rx.recv_frame().expect("recv").expect("frame");
                assert_eq!(got, payload, "{kind}: payload intact");
                server.tx.send_frame(b"ack").expect("send ack");
                // Clean close: client sees Ok(None).
                drop(server);
            }
        });
        let mut client = transport.connect(addr).expect("connect");
        client.tx.send_frame(&vec![7u8; 100_000]).expect("send");
        assert_eq!(
            client.rx.recv_frame().expect("recv").expect("frame"),
            b"ack"
        );
        assert!(client.rx.recv_frame().expect("clean close").is_none());
        t.join().expect("server thread");
    }

    #[test]
    fn loopback_round_trips_and_closes_cleanly() {
        exercise(&LoopbackTransport, "test-loopback-basic");
    }

    #[cfg(unix)]
    #[test]
    fn uds_round_trips_and_closes_cleanly() {
        let path = std::env::temp_dir().join(format!("em2-net-uds-{}.sock", std::process::id()));
        exercise(&UdsTransport, path.to_str().expect("utf8 path"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn tcp_round_trips_and_closes_cleanly() {
        // Bind port 0 is not expressible through the addr string; pick
        // an ephemeral port by binding then racing is overkill — use a
        // fixed high port salted by pid to avoid collisions.
        let addr = format!("127.0.0.1:{}", 20000 + (std::process::id() % 20000));
        exercise(&TcpTransport, &addr);
    }

    #[test]
    fn loopback_close_is_a_clean_eof() {
        let addr = "test-loopback-close";
        let mut acceptor = LoopbackTransport.listen(addr).expect("listen");
        let mut client = LoopbackTransport.connect(addr).expect("connect");
        let server = acceptor.accept().expect("accept");
        drop(server);
        assert!(client.rx.recv_frame().expect("eof").is_none());
    }

    #[test]
    fn connect_without_listener_is_refused() {
        assert_eq!(
            LoopbackTransport
                .connect("test-loopback-nobody")
                .err()
                .expect("refused")
                .kind(),
            io::ErrorKind::ConnectionRefused
        );
    }

    #[test]
    fn stream_rx_rejects_mid_frame_truncation() {
        // Feed a StreamRx a truncated frame directly.
        let bytes: Vec<u8> = {
            let mut b = (10u32).to_le_bytes().to_vec();
            b.extend_from_slice(&[1, 2, 3]); // 3 of 10 payload bytes
            b
        };
        let mut rx = StreamRx {
            r: BufReader::new(std::io::Cursor::new(bytes)),
        };
        assert!(rx.recv_frame().is_err(), "mid-frame EOF is an error");

        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        let mut rx = StreamRx {
            r: BufReader::new(std::io::Cursor::new(huge)),
        };
        assert!(rx.recv_frame().is_err(), "oversized length rejected");
    }

    #[test]
    fn oversize_send_is_a_typed_error_not_a_panic() {
        let addr = "test-loopback-oversize";
        let mut acceptor = LoopbackTransport.listen(addr).expect("listen");
        let mut client = LoopbackTransport.connect(addr).expect("connect");
        let _server = acceptor.accept().expect("accept");
        let e = client
            .tx
            .send_frame(&vec![0u8; MAX_FRAME + 1])
            .expect_err("over the cap");
        assert_eq!(e.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn recv_timeout_expires_with_a_typed_error() {
        let addr = "test-loopback-recv-timeout";
        let mut acceptor = LoopbackTransport.listen(addr).expect("listen");
        let mut client = LoopbackTransport.connect(addr).expect("connect");
        let _server = acceptor.accept().expect("accept");
        client
            .rx
            .set_recv_timeout(Some(Duration::from_millis(20)))
            .expect("timeout supported");
        let e = client.rx.recv_frame().expect_err("nothing was sent");
        assert_eq!(e.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn accept_deadline_expires_with_a_typed_error() {
        let mut acceptor = LoopbackTransport
            .listen("test-loopback-accept-deadline")
            .expect("listen");
        let e = match acceptor.accept_deadline(Instant::now() + Duration::from_millis(25)) {
            Err(e) => e,
            Ok(_) => panic!("nobody dials"),
        };
        assert_eq!(e.kind(), io::ErrorKind::TimedOut);
    }

    #[cfg(unix)]
    #[test]
    fn uds_accept_deadline_expires_with_a_typed_error() {
        let path =
            std::env::temp_dir().join(format!("em2-net-uds-deadline-{}.sock", std::process::id()));
        let mut acceptor = UdsTransport
            .listen(path.to_str().expect("utf8 path"))
            .expect("listen");
        let e = match acceptor.accept_deadline(Instant::now() + Duration::from_millis(25)) {
            Err(e) => e,
            Ok(_) => panic!("nobody dials"),
        };
        assert_eq!(e.kind(), io::ErrorKind::TimedOut);
        let _ = std::fs::remove_file(path);
    }
}
