//! Static cluster configuration: which node owns which shards, and
//! where to reach it.
//!
//! A cluster is a fixed list of nodes, each owning one **contiguous**
//! range of the global shard space (contiguity keeps the routing table
//! a single subtraction on the runtime's hot send path). Every process
//! is launched with the same spec — usually the same
//! [`ClusterSpec::parse`] string — and the connect handshake compares
//! [`ClusterSpec::digest`]s so two processes with divergent topologies
//! refuse to form a cluster instead of silently misrouting.

use crate::transport::{LoopbackTransport, TcpTransport, Transport, UdsTransport};
use std::sync::atomic::{AtomicU64, Ordering};

/// Which transport a cluster runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process channel pairs (testing, calibration baselines).
    Loopback,
    /// Unix-domain sockets (co-located processes).
    Uds,
    /// TCP (crosses hosts).
    Tcp,
}

impl TransportKind {
    /// Instantiate the transport.
    pub fn make(&self) -> Box<dyn Transport> {
        match self {
            TransportKind::Loopback => Box::new(LoopbackTransport),
            TransportKind::Uds => Box::new(UdsTransport),
            TransportKind::Tcp => Box::new(TcpTransport),
        }
    }

    /// The spec-string prefix (`"loopback"`, `"uds"`, `"tcp"`).
    pub fn name(&self) -> &'static str {
        match self {
            TransportKind::Loopback => "loopback",
            TransportKind::Uds => "uds",
            TransportKind::Tcp => "tcp",
        }
    }
}

/// Failure-detection knobs for a cluster run. All tunable from the
/// launch string ([`ClusterSpec::parse`]); none participate in the
/// topology digest, so nodes may differ in tuning without refusing
/// each other (the protocol tolerates asymmetric deadlines — a node
/// that gives up first aborts the others).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClusterTimeouts {
    /// Per-peer dial + handshake budget in milliseconds
    /// (`connect_timeout_ms=`). Dial retries back off exponentially
    /// with jitter inside this budget. Overridable for tests via the
    /// `EM2_NET_CONNECT_TIMEOUT_MS` environment variable.
    pub connect_ms: u64,
    /// Run deadline in milliseconds (`timeout_ms=`): the longest
    /// `finish()` waits for cluster quiesce before returning a
    /// [`crate::ClusterError::BarrierTimeout`] /
    /// [`crate::ClusterError::QuiesceTimeout`]. `0` waits forever
    /// (the fault-free default — big workloads set their own budget).
    pub run_ms: u64,
    /// Heartbeat interval in milliseconds (`heartbeat_ms=`): each
    /// node sends an uncounted `Heartbeat` frame on every connection
    /// idle that long, and declares a peer lost after
    /// [`ClusterTimeouts::peer_deadline_ms`] of silence. `0` disables
    /// heartbeats (the default — fault-free telemetry stays exactly
    /// reproducible).
    pub heartbeat_ms: u64,
}

impl ClusterTimeouts {
    /// Silence threshold after which a peer is declared lost:
    /// four missed heartbeat intervals.
    pub fn peer_deadline_ms(&self) -> u64 {
        self.heartbeat_ms.saturating_mul(4)
    }
}

impl Default for ClusterTimeouts {
    fn default() -> Self {
        ClusterTimeouts {
            connect_ms: 30_000,
            run_ms: 0,
            heartbeat_ms: 0,
        }
    }
}

/// One node of the cluster.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeSpec {
    /// Transport address the node listens on.
    pub addr: String,
    /// First global shard id the node owns.
    pub first_shard: usize,
    /// Number of shards the node owns.
    pub shards: usize,
}

/// The whole cluster: transport, shard space, and per-node ownership.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Transport every connection uses.
    pub kind: TransportKind,
    /// Cluster-wide shard count.
    pub total_shards: usize,
    /// The nodes, in id order; shard ranges are contiguous and cover
    /// `0..total_shards`. A node may own **zero** shards at launch —
    /// it joins the membership empty and receives shards through live
    /// handoffs ([`crate::NodeRuntime::request_handoff`]).
    pub nodes: Vec<NodeSpec>,
    /// Failure-detection deadlines (not part of the topology digest).
    pub timeouts: ClusterTimeouts,
    /// Epoch the ownership directory starts at (`initial_epoch=`,
    /// default 0). Part of the topology digest: every member must
    /// agree on the starting epoch or the handshake refuses, since
    /// epoch numbers fence in-flight frames during handoffs.
    pub initial_epoch: u64,
}

/// Process-unique counter salting auto-generated endpoint names.
fn unique_stamp() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl ClusterSpec {
    /// An even contiguous split of `shards` over `nodes` nodes, with
    /// per-node addresses derived from `base`:
    /// loopback/UDS get `"{base}.{node}"`, TCP (`base` = `host:port`)
    /// gets `host:(port + node)`.
    pub fn even(kind: TransportKind, base: &str, nodes: usize, shards: usize) -> Self {
        assert!(
            nodes > 0 && shards >= nodes,
            "need at least one shard per node"
        );
        let addr_of = |i: usize| -> String {
            match kind {
                TransportKind::Tcp => {
                    let (host, port) = base
                        .host_port()
                        .expect("tcp base address must be host:port");
                    let port = u16::try_from(i)
                        .ok()
                        .and_then(|i| port.checked_add(i))
                        .unwrap_or_else(|| {
                            panic!("tcp port range {port}+{nodes} nodes exceeds 65535")
                        });
                    format!("{host}:{port}")
                }
                _ => format!("{base}.{i}"),
            }
        };
        let nodes_vec = (0..nodes)
            .map(|i| {
                let first = i * shards / nodes;
                let end = (i + 1) * shards / nodes;
                NodeSpec {
                    addr: addr_of(i),
                    first_shard: first,
                    shards: end - first,
                }
            })
            .collect();
        ClusterSpec {
            kind,
            total_shards: shards,
            nodes: nodes_vec,
            timeouts: ClusterTimeouts::default(),
            initial_epoch: 0,
        }
    }

    /// The same spec with different failure-detection deadlines
    /// (builder-style, for tests and chaos harnesses).
    pub fn with_timeouts(mut self, timeouts: ClusterTimeouts) -> Self {
        self.timeouts = timeouts;
        self
    }

    /// The same spec with a different starting epoch (builder-style).
    /// Changes the topology digest — see [`ClusterSpec::initial_epoch`].
    pub fn with_initial_epoch(mut self, epoch: u64) -> Self {
        self.initial_epoch = epoch;
        self
    }

    /// An even loopback cluster under a process-unique auto-generated
    /// endpoint base (safe to create concurrently from many tests).
    pub fn loopback(nodes: usize, shards: usize) -> Self {
        let base = format!("em2-loopback-{}-{}", std::process::id(), unique_stamp());
        ClusterSpec::even(TransportKind::Loopback, &base, nodes, shards)
    }

    /// Parse a launch string: `"<kind>:<base>,nodes=<N>,shards=<S>"`,
    /// e.g. `uds:/tmp/em2-kv.sock,nodes=2,shards=16` or
    /// `tcp:127.0.0.1:7600,nodes=2,shards=16`. Optional failure-
    /// detection keys: `timeout_ms=<run deadline>`,
    /// `connect_timeout_ms=<dial budget>`, `heartbeat_ms=<interval>`
    /// (see [`ClusterTimeouts`]). Produces the same even split as
    /// [`ClusterSpec::even`], so every process parsing the same
    /// string builds the same topology (digest-checked at connect).
    pub fn parse(s: &str) -> Result<ClusterSpec, String> {
        let mut parts = s.split(',');
        let head = parts.next().unwrap_or_default();
        let (kind_s, base) = head
            .split_once(':')
            .ok_or_else(|| format!("expected <kind>:<base>, got {head:?}"))?;
        let kind = match kind_s {
            "loopback" => TransportKind::Loopback,
            "uds" => TransportKind::Uds,
            "tcp" => TransportKind::Tcp,
            other => return Err(format!("unknown transport {other:?} (loopback|uds|tcp)")),
        };
        let (mut nodes, mut shards) = (None, None);
        let mut timeouts = ClusterTimeouts::default();
        let mut initial_epoch = 0u64;
        let mut seen: Vec<&str> = Vec::new();
        for p in parts {
            let (k, v) = p
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {p:?}"))?;
            if seen.contains(&k) {
                // A repeated key is almost always a mangled launch
                // string; silently letting the last one win would hide
                // the half that was dropped.
                return Err(format!("duplicate key {k:?} in cluster spec"));
            }
            seen.push(k);
            let n: usize = v.parse().map_err(|_| format!("bad number in {p:?}"))?;
            match k {
                "nodes" => nodes = Some(n),
                "shards" => shards = Some(n),
                "timeout_ms" => timeouts.run_ms = n as u64,
                "connect_timeout_ms" => timeouts.connect_ms = n as u64,
                "heartbeat_ms" => timeouts.heartbeat_ms = n as u64,
                "initial_epoch" => initial_epoch = n as u64,
                other => {
                    return Err(format!(
                        "unknown key {other:?} \
                         (nodes|shards|timeout_ms|connect_timeout_ms|heartbeat_ms|initial_epoch)"
                    ))
                }
            }
        }
        let nodes = nodes.ok_or("missing nodes=<N>")?;
        let shards = shards.ok_or("missing shards=<S>")?;
        if nodes == 0 || shards < nodes {
            return Err(format!(
                "need 1 <= nodes <= shards, got nodes={nodes}, shards={shards}"
            ));
        }
        if kind == TransportKind::Tcp {
            let Some((_, port)) = base.host_port() else {
                return Err(format!("tcp base must be host:port, got {base:?}"));
            };
            // Node i listens on base-port + i; the whole range must fit.
            if port as usize + (nodes - 1) > u16::MAX as usize {
                return Err(format!(
                    "tcp port range {port}..{port}+{nodes} exceeds 65535"
                ));
            }
        }
        Ok(ClusterSpec::even(kind, base, nodes, shards)
            .with_timeouts(timeouts)
            .with_initial_epoch(initial_epoch))
    }

    /// Node count.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node owning a global shard id **at launch** (epoch
    /// `initial_epoch`). Live handoffs re-home shards afterwards;
    /// runtime routing consults the epoch-versioned
    /// `em2_rt::ShardDirectory`, not this table.
    pub fn owner_of(&self, shard: usize) -> usize {
        assert!(shard < self.total_shards, "shard {shard} outside cluster");
        // Contiguous ranges in id order: binary search by first_shard.
        // Zero-shard members are zero-width ranges — never Equal, so
        // the search walks past them to the owning node.
        match self.nodes.binary_search_by(|n| {
            if shard < n.first_shard {
                std::cmp::Ordering::Greater
            } else if shard >= n.first_shard + n.shards {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(i) => i,
            Err(_) => unreachable!("validated specs cover every shard"),
        }
    }

    /// `(first_shard, shards)` of a node.
    pub fn span(&self, node: usize) -> (usize, usize) {
        let n = &self.nodes[node];
        (n.first_shard, n.shards)
    }

    /// Check the invariants: at least one node, ranges contiguous in
    /// id order covering exactly `0..total_shards`. A node may own
    /// zero shards (it joins empty and is fed by live handoffs), but
    /// at least one node must own something.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("a cluster needs at least one node".into());
        }
        if self.nodes.iter().all(|n| n.shards == 0) {
            return Err("every node owns zero shards".into());
        }
        let mut at = 0usize;
        for (i, n) in self.nodes.iter().enumerate() {
            if n.first_shard != at {
                return Err(format!(
                    "node {i} starts at shard {} (expected {at}: ranges must be contiguous)",
                    n.first_shard
                ));
            }
            at += n.shards;
        }
        if at != self.total_shards {
            return Err(format!(
                "nodes cover {at} shards, spec says {}",
                self.total_shards
            ));
        }
        Ok(())
    }

    /// FNV-1a digest over the canonical rendering — what the
    /// handshake compares, so misconfigured processes refuse each
    /// other.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.kind.name().as_bytes());
        eat(&(self.total_shards as u64).to_le_bytes());
        eat(&self.initial_epoch.to_le_bytes());
        for n in &self.nodes {
            eat(n.addr.as_bytes());
            eat(&(n.first_shard as u64).to_le_bytes());
            eat(&(n.shards as u64).to_le_bytes());
        }
        h
    }
}

/// `rsplit_once(':')` with a `u16` port parse, as an extension so the
/// TCP address plumbing reads declaratively.
trait HostPort {
    fn host_port(&self) -> Option<(&str, u16)>;
}

impl HostPort for str {
    fn host_port(&self) -> Option<(&str, u16)> {
        let (host, port) = self.rsplit_once(':')?;
        port.parse::<u16>().ok().map(|p| (host, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_covers_contiguously() {
        for (nodes, shards) in [(1, 16), (2, 16), (3, 16), (4, 1024), (5, 7)] {
            let spec = ClusterSpec::even(TransportKind::Uds, "/tmp/x", nodes, shards);
            spec.validate().expect("valid");
            assert_eq!(spec.num_nodes(), nodes);
            for s in 0..shards {
                let owner = spec.owner_of(s);
                let (first, count) = spec.span(owner);
                assert!(s >= first && s < first + count);
            }
        }
    }

    #[test]
    fn parse_round_trips_the_even_layout() {
        let spec = ClusterSpec::parse("uds:/tmp/em2.sock,nodes=2,shards=16").expect("parse");
        assert_eq!(
            spec,
            ClusterSpec::even(TransportKind::Uds, "/tmp/em2.sock", 2, 16)
        );
        let tcp = ClusterSpec::parse("tcp:127.0.0.1:7600,nodes=2,shards=8").expect("parse");
        assert_eq!(tcp.nodes[1].addr, "127.0.0.1:7601");
        assert!(ClusterSpec::parse("udp:/x,nodes=2,shards=4").is_err());
        assert!(ClusterSpec::parse("uds:/x,nodes=0,shards=4").is_err());
        assert!(ClusterSpec::parse("uds:/x,nodes=9,shards=4").is_err());
        assert!(ClusterSpec::parse("tcp:nopport,nodes=2,shards=4").is_err());
        assert!(
            ClusterSpec::parse("tcp:127.0.0.1:65535,nodes=2,shards=4").is_err(),
            "port range overflowing u16 is a parse error, not a wrap"
        );
        assert!(ClusterSpec::parse("tcp:127.0.0.1:65535,nodes=1,shards=4").is_ok());
        assert!(ClusterSpec::parse("uds:/x,bogus=1,shards=4").is_err());
    }

    #[test]
    fn timeout_keys_parse_and_stay_out_of_the_digest() {
        let tuned = ClusterSpec::parse(
            "uds:/tmp/em2.sock,nodes=2,shards=16,timeout_ms=1500,\
             connect_timeout_ms=250,heartbeat_ms=40",
        )
        .expect("parse");
        assert_eq!(tuned.timeouts.run_ms, 1500);
        assert_eq!(tuned.timeouts.connect_ms, 250);
        assert_eq!(tuned.timeouts.heartbeat_ms, 40);
        assert_eq!(tuned.timeouts.peer_deadline_ms(), 160);
        let plain = ClusterSpec::parse("uds:/tmp/em2.sock,nodes=2,shards=16").expect("parse");
        assert_eq!(plain.timeouts, ClusterTimeouts::default());
        // Deadline tuning must not change cluster identity: a tuned
        // node still handshakes with an untuned one.
        assert_eq!(tuned.digest(), plain.digest());
        assert_ne!(tuned, plain, "timeouts do participate in Eq");
    }

    #[test]
    fn duplicate_keys_are_rejected_by_name() {
        for s in [
            "uds:/x,nodes=2,nodes=3,shards=4",
            "uds:/x,nodes=2,shards=4,shards=8",
            "uds:/x,nodes=2,shards=4,timeout_ms=5,timeout_ms=9",
        ] {
            let err = ClusterSpec::parse(s).expect_err("duplicate must be rejected");
            let key = s
                .split(',')
                .skip(1)
                .map(|p| p.split_once('=').unwrap().0)
                .fold(std::collections::HashMap::new(), |mut m, k| {
                    *m.entry(k).or_insert(0) += 1;
                    m
                })
                .into_iter()
                .find(|&(_, c)| c > 1)
                .unwrap()
                .0;
            assert!(
                err.contains("duplicate") && err.contains(key),
                "error {err:?} must name the duplicated key {key:?}"
            );
        }
    }

    #[test]
    fn initial_epoch_parses_and_changes_the_digest() {
        let v1 = ClusterSpec::parse("uds:/x,nodes=2,shards=8,initial_epoch=7").expect("parse");
        assert_eq!(v1.initial_epoch, 7);
        let v0 = ClusterSpec::parse("uds:/x,nodes=2,shards=8").expect("parse");
        assert_eq!(v0.initial_epoch, 0);
        // Epoch numbers fence in-flight frames, so members disagreeing
        // on the starting epoch must refuse each other at handshake.
        assert_ne!(v0.digest(), v1.digest());
    }

    #[test]
    fn zero_shard_members_are_legal_and_routable() {
        // A joining node: in the membership, owns nothing yet.
        let mut spec = ClusterSpec::even(TransportKind::Loopback, "x", 2, 8);
        spec.nodes.push(NodeSpec {
            addr: "x.2".into(),
            first_shard: 8,
            shards: 0,
        });
        spec.validate().expect("zero-shard member is legal");
        for s in 0..8 {
            assert!(spec.owner_of(s) < 2, "empty node never owns a shard");
        }
        // But a cluster where nobody owns anything is still invalid.
        let mut empty = spec.clone();
        for n in &mut empty.nodes {
            n.shards = 0;
        }
        empty.total_shards = 0;
        assert!(empty.validate().is_err());
    }

    #[test]
    fn digest_separates_topologies() {
        let a = ClusterSpec::even(TransportKind::Uds, "/tmp/a", 2, 16);
        let b = ClusterSpec::even(TransportKind::Uds, "/tmp/a", 2, 32);
        let c = ClusterSpec::even(TransportKind::Uds, "/tmp/b", 2, 16);
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        assert_eq!(a.digest(), a.clone().digest());
    }

    #[test]
    fn loopback_specs_are_process_unique() {
        assert_ne!(
            ClusterSpec::loopback(2, 8).nodes[0].addr,
            ClusterSpec::loopback(2, 8).nodes[0].addr
        );
    }

    #[test]
    fn invalid_layouts_are_rejected() {
        let mut spec = ClusterSpec::even(TransportKind::Loopback, "x", 2, 8);
        spec.nodes[1].first_shard = 5;
        assert!(spec.validate().is_err());
        spec.nodes[1].first_shard = 4;
        spec.total_shards = 9;
        assert!(spec.validate().is_err());
    }
}
