//! Deterministic fault injection for cluster transports.
//!
//! A [`ChaosTransport`] wraps any [`Transport`] and applies a scripted
//! [`FaultPlan`] to the frames crossing it: drop, delay, duplicate,
//! truncate, or bit-corrupt the Nth frame on a given `(from, to)`
//! edge, sever a connection mid-run, refuse inbound accepts, or
//! "crash" the whole node once it has sent a scripted number of
//! frames. Plans are either hand-scripted (one builder call per
//! fault) or derived from a `u64` seed via [`FaultPlan::seeded`] —
//! either way the injection is a pure function of the plan and the
//! frame streams, so any failing cluster run replays exactly from its
//! seed, in-process, under a debugger.
//!
//! The point is the property the chaos harness
//! (`crates/net/tests/chaos.rs`) checks against DESIGN.md §10: under
//! *any* plan, every node either completes with counters bit-equal to
//! the single-process run (possible only for benign faults — delays
//! and duplicates, which the sequence layer absorbs) or returns a
//! typed [`crate::ClusterError`] within its configured deadline.
//! Never a hang, never a silently wrong sum.

use crate::cluster::ClusterSpec;
use crate::error::ClusterError;
use crate::node::{run_workload_cluster_with_handoffs, NetReport};
use crate::proto::NetMsg;
use crate::transport::{Acceptor, Duplex, FrameRx, FrameTx, Transport};
use em2_model::DetRng;
use em2_placement::Placement;
use em2_rt::RtConfig;
use em2_trace::Workload;
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One scripted mutation of a single frame on one directed edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Swallow the frame: the sender believes it shipped. Detected by
    /// the receiver as a sequence gap on the next frame (or the next
    /// heartbeat, which bounds detection on an idle edge).
    Drop,
    /// Hold the frame for `ms` milliseconds, then send it. Ordering
    /// is preserved (the delay happens under the sender's per-peer
    /// lock), so this fault is benign: the run must still complete
    /// bit-equal.
    Delay {
        /// Milliseconds to hold the frame.
        ms: u64,
    },
    /// Send the frame twice. The receiver's sequence layer drops the
    /// replay, so this fault is benign.
    Duplicate,
    /// Send only the first `keep` bytes of the frame. The receiver
    /// fails typed in the codec (truncated header or checksum
    /// mismatch).
    Truncate {
        /// Prefix length that survives.
        keep: usize,
    },
    /// XOR one payload byte. The frame checksum turns any single-bit
    /// corruption into a typed codec error — it can never decode as a
    /// different valid message.
    Corrupt {
        /// Byte position (taken modulo the frame length).
        offset: usize,
        /// Mask to XOR in (zero is promoted to `0x01`).
        xor: u8,
    },
    /// Close and discard the connection's send half. The sender sees
    /// a typed send failure; the peer sees EOF without the protocol's
    /// goodbye and reports the peer lost.
    Sever,
}

impl FaultAction {
    /// Whether the action preserves the delivered frame stream
    /// (delays and duplicates do; the sequence layer absorbs both).
    /// A plan of only benign actions must complete bit-equal.
    pub fn is_benign(&self) -> bool {
        matches!(self, FaultAction::Delay { .. } | FaultAction::Duplicate)
    }

    /// Stable short name (`fault_matrix` grouping key).
    pub fn kind(&self) -> &'static str {
        match self {
            FaultAction::Drop => "drop",
            FaultAction::Delay { .. } => "delay",
            FaultAction::Duplicate => "duplicate",
            FaultAction::Truncate { .. } => "truncate",
            FaultAction::Corrupt { .. } => "corrupt",
            FaultAction::Sever => "sever",
        }
    }
}

/// A complete fault script for one cluster run: per-edge frame
/// mutations, per-edge **flush** mutations (a whole coalesced batch as
/// the unit of damage), plus whole-node crash and accept-refusal
/// schedules. Frame indices count every frame the wrapped transport is
/// asked to send on that edge (handshake = frame 0); flush indices
/// count every flush — `send_frame` is a one-frame flush, so the
/// handshake is also flush 0. Either way a plan addresses a
/// deterministic position in the stream, not a wall-clock instant.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// `(from, to)` → frame index on that edge → action.
    edge: HashMap<(usize, usize), BTreeMap<u64, FaultAction>>,
    /// `(from, to)` → flush index on that edge → action applied to the
    /// whole coalesced batch.
    flush: HashMap<(usize, usize), BTreeMap<u64, FaultAction>>,
    /// Node → sent-frame count (across all edges) at which the node's
    /// transport dies wholesale.
    crash: HashMap<usize, u64>,
    /// Node → how many inbound accepts to refuse before behaving.
    refuse: HashMap<usize, u32>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Apply `action` to the `nth` frame sent from node `from` to
    /// node `to` (0-based; the handshake frame is 0).
    pub fn fault(mut self, from: usize, to: usize, nth: u64, action: FaultAction) -> Self {
        self.edge.entry((from, to)).or_default().insert(nth, action);
        self
    }

    /// Apply `action` to the `nth` **flush** sent from node `from` to
    /// node `to` (0-based; `send_frame` counts as a one-frame flush,
    /// so the handshake is flush 0). `Drop` swallows the whole batch
    /// (a many-frame sequence gap), `Truncate{keep}` keeps a byte
    /// budget across the concatenated frames — cutting mid-frame, like
    /// a crash between two `write(2)`s — `Corrupt` offsets into the
    /// concatenation, and `Duplicate` replays the entire batch.
    ///
    /// A `Truncate` whose target flush fits entirely inside `keep`
    /// would lose zero bytes — that is not a crash model, it is a
    /// no-op — so it **re-arms on the next flush** and keeps doing so
    /// until it actually cuts. Flush composition depends on coalescing
    /// timing; re-arming makes the scheduled cut deterministic without
    /// the caller having to know how large flush `nth` happened to be.
    pub fn fault_flush(mut self, from: usize, to: usize, nth: u64, action: FaultAction) -> Self {
        self.flush
            .entry((from, to))
            .or_default()
            .insert(nth, action);
        self
    }

    /// Kill node `node`'s transport once it has sent `after_frames`
    /// frames in total: every later send and receive on that node
    /// fails, as if the process vanished mid-run.
    pub fn crash_node(mut self, node: usize, after_frames: u64) -> Self {
        self.crash.insert(node, after_frames);
        self
    }

    /// Make node `node` refuse its first `count` inbound connections
    /// (accepted, then immediately torn down).
    pub fn refuse_accepts(mut self, node: usize, count: u32) -> Self {
        self.refuse.insert(node, count);
        self
    }

    /// Whether every scripted action is benign (no drops, truncations,
    /// corruptions, severs, crashes, or refusals) — the plans under
    /// which a run must still complete bit-equal.
    pub fn is_benign(&self) -> bool {
        self.crash.is_empty()
            && self.refuse.is_empty()
            && self
                .edge
                .values()
                .chain(self.flush.values())
                .flat_map(|m| m.values())
                .all(|a| a.is_benign())
    }

    /// Short names of every scripted action class, deduplicated and
    /// sorted (diagnostics and `fault_matrix` labels).
    pub fn kinds(&self) -> Vec<&'static str> {
        let mut ks: Vec<&'static str> = self
            .edge
            .values()
            .chain(self.flush.values())
            .flat_map(|m| m.values())
            .map(|a| a.kind())
            .collect();
        if !self.crash.is_empty() {
            ks.push("crash");
        }
        if !self.refuse.is_empty() {
            ks.push("refuse");
        }
        ks.sort_unstable();
        ks.dedup();
        ks
    }

    /// Derive a plan from a seed: one to three edge faults on random
    /// edges and frame indices, plus (when `benign_only` is false) an
    /// occasional whole-node crash. `benign_only` restricts the draw
    /// to delays and duplicates — the seeds the harness requires to
    /// complete bit-equal.
    pub fn seeded(seed: u64, nodes: usize, benign_only: bool) -> Self {
        assert!(nodes >= 2, "fault plans need an edge to fault");
        let mut rng = DetRng::new(seed ^ 0xC4A0_5EED_F417_7001);
        let mut plan = FaultPlan::new();
        let picks = 1 + rng.below(3);
        for _ in 0..picks {
            let from = rng.below(nodes as u64) as usize;
            let mut to = rng.below(nodes as u64 - 1) as usize;
            if to >= from {
                to += 1;
            }
            // Small indices land in the handshake and barrier phases;
            // larger ones in shard traffic and quiesce.
            let nth = rng.below(30);
            let action = if benign_only {
                match rng.below(2) {
                    0 => FaultAction::Delay {
                        ms: 1 + rng.below(15),
                    },
                    _ => FaultAction::Duplicate,
                }
            } else {
                match rng.below(6) {
                    0 => FaultAction::Drop,
                    1 => FaultAction::Delay {
                        ms: 1 + rng.below(15),
                    },
                    2 => FaultAction::Duplicate,
                    3 => FaultAction::Truncate {
                        keep: rng.below(12) as usize,
                    },
                    4 => FaultAction::Corrupt {
                        offset: rng.below(64) as usize,
                        xor: 1 << rng.below(8),
                    },
                    _ => FaultAction::Sever,
                }
            };
            plan = plan.fault(from, to, nth, action);
        }
        if !benign_only && rng.chance(0.25) {
            let node = rng.below(nodes as u64) as usize;
            plan = plan.crash_node(node, 3 + rng.below(25));
        }
        plan
    }
}

/// Live injection telemetry for one node's [`ChaosTransport`]:
/// whether the scripted crash tripped, how many faults actually
/// fired, and when the first one did (the `fault_matrix` experiment's
/// detection-latency origin).
#[derive(Debug, Default)]
pub struct ChaosState {
    /// Frames this node's transport was asked to send, across all
    /// edges (the crash-trigger clock).
    sent: AtomicU64,
    /// Set once the scripted crash threshold trips.
    crashed: AtomicBool,
    /// Faults that actually fired (scripted faults on frames never
    /// sent do not count).
    injected: AtomicU32,
    /// Instant the first fault fired.
    injected_at: Mutex<Option<Instant>>,
    /// Inbound accepts refused so far.
    refused: AtomicU32,
}

impl ChaosState {
    fn record_injection(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
        self.injected_at
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get_or_insert_with(Instant::now);
    }

    /// When the first fault fired, if any did.
    pub fn injected_at(&self) -> Option<Instant> {
        *self.injected_at.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// How many scripted faults actually fired.
    pub fn injected(&self) -> u32 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Whether the scripted node crash tripped.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    fn crash_err() -> io::Error {
        io::Error::new(io::ErrorKind::BrokenPipe, "chaos: node crashed")
    }
}

/// A [`Transport`] that applies a [`FaultPlan`] to every frame
/// crossing it. One instance per node; the plan and the spec's
/// address table tell it which `(from, to)` edge each connection is.
pub struct ChaosTransport {
    inner: Box<dyn Transport>,
    me: usize,
    /// Peer address → node id (how the dialer knows its edge).
    addr_to_node: HashMap<String, usize>,
    plan: Arc<FaultPlan>,
    state: Arc<ChaosState>,
}

impl ChaosTransport {
    /// Wrap `spec.kind`'s transport for node `me` under `plan`.
    pub fn wrap(spec: &ClusterSpec, me: usize, plan: Arc<FaultPlan>) -> Self {
        let addr_to_node = spec
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.addr.clone(), i))
            .collect();
        ChaosTransport {
            inner: spec.kind.make(),
            me,
            addr_to_node,
            plan,
            state: Arc::new(ChaosState::default()),
        }
    }

    /// This node's injection telemetry.
    pub fn state(&self) -> Arc<ChaosState> {
        Arc::clone(&self.state)
    }

    fn wrap_duplex(&self, d: Duplex, peer: Arc<OnceLock<usize>>, sniff: bool) -> Duplex {
        Duplex {
            tx: Box::new(ChaosTx {
                inner: Some(d.tx),
                me: self.me,
                peer: Arc::clone(&peer),
                sent_on_edge: 0,
                flushes_on_edge: 0,
                pending_flush: None,
                plan: Arc::clone(&self.plan),
                state: Arc::clone(&self.state),
            }),
            rx: Box::new(ChaosRx {
                inner: d.rx,
                peer,
                sniff,
                state: Arc::clone(&self.state),
            }),
        }
    }
}

impl Transport for ChaosTransport {
    fn kind(&self) -> &'static str {
        self.inner.kind()
    }

    fn listen(&self, addr: &str) -> io::Result<Box<dyn Acceptor>> {
        Ok(Box::new(ChaosAcceptor {
            inner: self.inner.listen(addr)?,
            me: self.me,
            plan: Arc::clone(&self.plan),
            state: Arc::clone(&self.state),
        }))
    }

    fn connect(&self, addr: &str) -> io::Result<Duplex> {
        if self.state.crashed.load(Ordering::Relaxed) {
            return Err(ChaosState::crash_err());
        }
        let peer = Arc::new(OnceLock::new());
        if let Some(&n) = self.addr_to_node.get(addr) {
            let _ = peer.set(n);
        }
        let d = self.inner.connect(addr)?;
        Ok(self.wrap_duplex(d, peer, false))
    }
}

struct ChaosAcceptor {
    inner: Box<dyn Acceptor>,
    me: usize,
    plan: Arc<FaultPlan>,
    state: Arc<ChaosState>,
}

impl ChaosAcceptor {
    fn vet(&self, d: Duplex) -> io::Result<Duplex> {
        let budget = self.plan.refuse.get(&self.me).copied().unwrap_or(0);
        if self.state.refused.load(Ordering::Relaxed) < budget {
            self.state.refused.fetch_add(1, Ordering::Relaxed);
            self.state.record_injection();
            drop(d); // the dialer sees its connection close unanswered
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos: inbound connection refused",
            ));
        }
        // The peer's id is unknown until its Hello arrives; the rx
        // wrapper sniffs it into the shared cell. The acceptor never
        // sends before receiving the Hello, so the tx wrapper always
        // knows its edge by the time it matters.
        let peer = Arc::new(OnceLock::new());
        Ok(Duplex {
            tx: Box::new(ChaosTx {
                inner: Some(d.tx),
                me: self.me,
                peer: Arc::clone(&peer),
                sent_on_edge: 0,
                flushes_on_edge: 0,
                pending_flush: None,
                plan: Arc::clone(&self.plan),
                state: Arc::clone(&self.state),
            }),
            rx: Box::new(ChaosRx {
                inner: d.rx,
                peer,
                sniff: true,
                state: Arc::clone(&self.state),
            }),
        })
    }
}

impl Acceptor for ChaosAcceptor {
    fn accept(&mut self) -> io::Result<Duplex> {
        let d = self.inner.accept()?;
        self.vet(d)
    }

    fn accept_deadline(&mut self, deadline: Instant) -> io::Result<Duplex> {
        let d = self.inner.accept_deadline(deadline)?;
        self.vet(d)
    }
}

struct ChaosTx {
    /// `None` after a scripted sever.
    inner: Option<Box<dyn FrameTx>>,
    me: usize,
    peer: Arc<OnceLock<usize>>,
    sent_on_edge: u64,
    /// Flushes attempted on this edge (`send_frame` = one-frame
    /// flush), the index `FaultPlan::fault_flush` addresses.
    flushes_on_edge: u64,
    /// A scheduled flush fault that did not bite yet (a `Truncate`
    /// whose flush fit under the byte budget) — re-applied to the next
    /// flush so a scheduled cut always lands.
    pending_flush: Option<FaultAction>,
    plan: Arc<FaultPlan>,
    state: Arc<ChaosState>,
}

impl ChaosTx {
    fn severed_err() -> io::Error {
        io::Error::new(io::ErrorKind::BrokenPipe, "chaos: connection severed")
    }

    fn sever(&mut self) -> io::Result<()> {
        if let Some(mut conn) = self.inner.take() {
            let _ = conn.close();
            drop(conn); // loopback peers unblock on channel drop
        }
        Err(Self::severed_err())
    }

    /// Per-frame pass: crash clock, frame-indexed faults. Returns the
    /// surviving (possibly mutated) frames, or an error for crash /
    /// sever — a sever first flushes the frames that preceded it, like
    /// a connection dying between two `write(2)`s.
    fn transform_frames(&mut self, payloads: &[Vec<u8>]) -> io::Result<Vec<Vec<u8>>> {
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(payloads.len());
        for payload in payloads {
            if self.state.crashed.load(Ordering::Relaxed) {
                return Err(ChaosState::crash_err());
            }
            if let Some(&after) = self.plan.crash.get(&self.me) {
                if self.state.sent.load(Ordering::Relaxed) >= after {
                    // A crash mid-window loses the whole buffered
                    // batch: nothing already transformed is flushed.
                    self.state.crashed.store(true, Ordering::Relaxed);
                    self.state.record_injection();
                    return Err(ChaosState::crash_err());
                }
            }
            self.state.sent.fetch_add(1, Ordering::Relaxed);
            let nth = self.sent_on_edge;
            self.sent_on_edge += 1;
            let action = self
                .peer
                .get()
                .and_then(|&to| self.plan.edge.get(&(self.me, to)))
                .and_then(|m| m.get(&nth))
                .copied();
            let Some(action) = action else {
                out.push(payload.clone());
                continue;
            };
            self.state.record_injection();
            match action {
                FaultAction::Drop => {}
                FaultAction::Delay { ms } => {
                    // Sleeping here (inside the writer's flush) stalls
                    // the edge without reordering it.
                    std::thread::sleep(Duration::from_millis(ms));
                    out.push(payload.clone());
                }
                FaultAction::Duplicate => {
                    out.push(payload.clone());
                    out.push(payload.clone());
                }
                FaultAction::Truncate { keep } => {
                    out.push(payload[..keep.min(payload.len())].to_vec());
                }
                FaultAction::Corrupt { offset, xor } => {
                    let mut p = payload.clone();
                    if !p.is_empty() {
                        let i = offset % p.len();
                        p[i] ^= if xor == 0 { 1 } else { xor };
                    }
                    out.push(p);
                }
                FaultAction::Sever => {
                    if let Some(conn) = self.inner.as_mut() {
                        let _ = conn.send_frames(&out);
                    }
                    return self.sever().map(|_| Vec::new());
                }
            }
        }
        Ok(out)
    }
}

impl FrameTx for ChaosTx {
    fn send_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        // Route through the batch path so flush indices count every
        // send: an uncoalesced stream is a run of one-frame flushes.
        let batch = [payload.to_vec()];
        self.send_frames(&batch)
    }

    fn send_frames(&mut self, payloads: &[Vec<u8>]) -> io::Result<()> {
        let mut out = self.transform_frames(payloads)?;
        let fnth = self.flushes_on_edge;
        self.flushes_on_edge += 1;
        if self.inner.is_none() {
            return Err(Self::severed_err());
        }
        let action = self
            .peer
            .get()
            .and_then(|&to| self.plan.flush.get(&(self.me, to)))
            .and_then(|m| m.get(&fnth))
            .copied()
            .or_else(|| self.pending_flush.take());
        let Some(action) = action else {
            if out.is_empty() {
                return Ok(());
            }
            return self
                .inner
                .as_mut()
                .expect("checked above")
                .send_frames(&out);
        };
        if let FaultAction::Truncate { keep } = action {
            let total: usize = out.iter().map(|p| p.len()).sum();
            if keep >= total {
                // The whole window fits under the byte budget: zero
                // bytes would be lost, which models no crash at all.
                // Re-arm on the next flush (see `fault_flush` docs) so
                // the scheduled cut always lands, regardless of how
                // coalescing timing sized this particular flush.
                self.pending_flush = Some(action);
                if out.is_empty() {
                    return Ok(());
                }
                return self
                    .inner
                    .as_mut()
                    .expect("checked above")
                    .send_frames(&out);
            }
        }
        self.state.record_injection();
        let inner = self.inner.as_mut().expect("checked above");
        match action {
            // The whole batch vanishes: every frame in it surfaces as
            // one many-frame sequence gap at the receiver.
            FaultAction::Drop => Ok(()),
            FaultAction::Delay { ms } => {
                std::thread::sleep(Duration::from_millis(ms));
                inner.send_frames(&out)
            }
            // Replay the entire batch; the receiver's sequence layer
            // drops every frame of the replay.
            FaultAction::Duplicate => {
                inner.send_frames(&out)?;
                inner.send_frames(&out)
            }
            // A byte budget across the concatenated frames: frames
            // before the cut ship whole, the crossing frame ships a
            // prefix, everything after is lost — a crash between two
            // `write(2)`s of one coalesced window.
            FaultAction::Truncate { keep } => {
                let mut budget = keep;
                let mut cut: Vec<Vec<u8>> = Vec::new();
                for p in out {
                    if budget == 0 {
                        break;
                    }
                    if p.len() <= budget {
                        budget -= p.len();
                        cut.push(p);
                    } else {
                        cut.push(p[..budget].to_vec());
                        budget = 0;
                    }
                }
                inner.send_frames(&cut)
            }
            // Offset into the concatenation — the damaged byte may
            // land in any frame of the window.
            FaultAction::Corrupt { offset, xor } => {
                let total: usize = out.iter().map(|p| p.len()).sum();
                if total > 0 {
                    let mut i = offset % total;
                    for p in out.iter_mut() {
                        if i < p.len() {
                            p[i] ^= if xor == 0 { 1 } else { xor };
                            break;
                        }
                        i -= p.len();
                    }
                }
                inner.send_frames(&out)
            }
            FaultAction::Sever => self.sever(),
        }
    }

    fn close(&mut self) -> io::Result<()> {
        if self.state.crashed.load(Ordering::Relaxed) {
            // A crashed node's goodbye never reaches the wire.
            self.inner = None;
            return Err(ChaosState::crash_err());
        }
        match self.inner.as_mut() {
            Some(c) => c.close(),
            None => Ok(()),
        }
    }
}

struct ChaosRx {
    inner: Box<dyn FrameRx>,
    peer: Arc<OnceLock<usize>>,
    /// Accepted connections learn their peer from its Hello frame.
    sniff: bool,
    state: Arc<ChaosState>,
}

impl FrameRx for ChaosRx {
    fn recv_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.state.crashed.load(Ordering::Relaxed) {
            return Err(ChaosState::crash_err());
        }
        let frame = self.inner.recv_frame()?;
        if self.sniff && self.peer.get().is_none() {
            if let Some(f) = &frame {
                if let Ok((_, NetMsg::Hello { node, .. })) = NetMsg::decode(f) {
                    let _ = self.peer.set(node as usize);
                }
            }
        }
        Ok(frame)
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_recv_timeout(timeout)
    }
}

/// Run a whole cluster in-process with every node's transport wrapped
/// in the same [`FaultPlan`]. Returns each node's outcome in node
/// order, plus the per-node [`ChaosState`] so harnesses can measure
/// injection-to-detection latency. Never panics on an injected fault:
/// the property under test is precisely that faults surface as typed
/// errors.
pub fn run_workload_cluster_chaos(
    spec: &ClusterSpec,
    cfg: &RtConfig,
    workload: &Arc<Workload>,
    placement: &Arc<dyn Placement>,
    scheme_factory: fn() -> Box<dyn em2_core::decision::DecisionScheme>,
    plan: &Arc<FaultPlan>,
) -> Vec<(Result<NetReport, ClusterError>, Arc<ChaosState>)> {
    run_workload_cluster_chaos_with_handoffs(
        spec,
        cfg,
        workload,
        placement,
        scheme_factory,
        plan,
        &[],
    )
}

/// [`run_workload_cluster_chaos`] with node 0 driving live shard
/// handoffs mid-workload — the harness for faults landing **inside
/// the handoff window**: frames dropped, truncated, or severed while
/// a frozen shard is in flight must surface as typed errors (usually
/// [`ClusterError::Handoff`] naming the stuck phase, via the
/// coordinator's watchdog), never a hang or a wrong sum.
#[allow(clippy::too_many_arguments)]
pub fn run_workload_cluster_chaos_with_handoffs(
    spec: &ClusterSpec,
    cfg: &RtConfig,
    workload: &Arc<Workload>,
    placement: &Arc<dyn Placement>,
    scheme_factory: fn() -> Box<dyn em2_core::decision::DecisionScheme>,
    plan: &Arc<FaultPlan>,
    handoffs: &[(usize, usize)],
) -> Vec<(Result<NetReport, ClusterError>, Arc<ChaosState>)> {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..spec.num_nodes())
            .map(|node| {
                let spec = spec.clone();
                let cfg = cfg.clone();
                let workload = Arc::clone(workload);
                let placement = Arc::clone(placement);
                let plan = Arc::clone(plan);
                let handoffs: Vec<(usize, usize)> = if node == 0 {
                    handoffs.to_vec()
                } else {
                    Vec::new()
                };
                s.spawn(move || {
                    let transport = ChaosTransport::wrap(&spec, node, plan);
                    let state = transport.state();
                    let r = run_workload_cluster_with_handoffs(
                        Box::new(transport),
                        spec,
                        node,
                        cfg,
                        &workload,
                        placement,
                        scheme_factory,
                        &handoffs,
                    );
                    (r, state)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chaos node thread"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_and_benign_when_asked() {
        for seed in 0..50u64 {
            let a = FaultPlan::seeded(seed, 2, true);
            let b = FaultPlan::seeded(seed, 2, true);
            assert_eq!(a, b, "seed {seed} derives one plan");
            assert!(a.is_benign(), "benign_only draw stayed benign");
            assert!(!a.kinds().is_empty());
        }
        let harmful: usize = (0..50u64)
            .filter(|&s| !FaultPlan::seeded(s, 3, false).is_benign())
            .count();
        assert!(harmful > 20, "unrestricted draws inject real damage");
    }

    #[test]
    fn scripted_faults_mutate_exactly_the_named_frame() {
        use crate::cluster::TransportKind;
        let spec = ClusterSpec::even(TransportKind::Loopback, "chaos-unit-edge", 2, 4);
        let plan = Arc::new(FaultPlan::new().fault(1, 0, 1, FaultAction::Drop).fault(
            1,
            0,
            2,
            FaultAction::Duplicate,
        ));
        // Node 0 listens un-faulted; node 1 dials through chaos.
        let mut acceptor = spec
            .kind
            .make()
            .listen(&spec.nodes[0].addr)
            .expect("listen");
        let chaos = ChaosTransport::wrap(&spec, 1, Arc::clone(&plan));
        let mut dialer = chaos.connect(&spec.nodes[0].addr).expect("connect");
        let mut server = acceptor.accept().expect("accept");
        for n in 0..4u8 {
            dialer.tx.send_frame(&[n]).expect("send");
        }
        // Frame 1 dropped, frame 2 doubled: the receiver sees 0,2,2,3.
        let got: Vec<u8> = (0..4)
            .map(|_| server.rx.recv_frame().expect("recv").expect("frame")[0])
            .collect();
        assert_eq!(got, vec![0, 2, 2, 3]);
        assert_eq!(chaos.state().injected(), 2);
        assert!(chaos.state().injected_at().is_some());
    }

    #[test]
    fn crash_kills_every_direction_at_the_threshold() {
        use crate::cluster::TransportKind;
        let spec = ClusterSpec::even(TransportKind::Loopback, "chaos-unit-crash", 2, 4);
        let plan = Arc::new(FaultPlan::new().crash_node(1, 2));
        let chaos = ChaosTransport::wrap(&spec, 1, Arc::clone(&plan));
        let mut acceptor = spec
            .kind
            .make()
            .listen(&spec.nodes[0].addr)
            .expect("listen");
        let mut dialer = chaos.connect(&spec.nodes[0].addr).expect("connect");
        let _server = acceptor.accept().expect("accept");
        dialer.tx.send_frame(&[0]).expect("frame 0");
        dialer.tx.send_frame(&[1]).expect("frame 1");
        assert!(dialer.tx.send_frame(&[2]).is_err(), "threshold trips");
        assert!(chaos.state().crashed());
        assert!(dialer.rx.recv_frame().is_err(), "rx dies with the node");
        assert!(
            chaos.connect(&spec.nodes[0].addr).is_err(),
            "no new connections from a dead node"
        );
    }
}
