//! # em2-net
//!
//! The cross-process transport layer that turns the executable
//! `em2-rt` runtime into a **real distributed DSM**: computation
//! migration, word-granular remote access, barriers, and quiesce all
//! working across OS processes (and hosts), exactly as the paper's
//! machine works across cores.
//!
//! `em2-rt`'s message seam was already a protocol — Arrive / Request /
//! Response / BarrierRelease, with [`em2_rt::Task::context_bytes`] as
//! the migration payload. This crate puts that protocol on the wire:
//!
//! * [`transport`] — length-prefixed byte frames over three
//!   interchangeable carriers: in-process **loopback** channels,
//!   **Unix-domain sockets**, and **TCP**;
//! * [`proto`] — the node-to-node control protocol (handshake with
//!   version + topology check, barrier arrivals/releases, completion
//!   accounting, quiesce), built on the same typed-error codec as
//!   `em2_rt::wire`;
//! * [`cluster`] — static cluster specs: node → contiguous shard
//!   range, parseable from a CLI string
//!   (`uds:/tmp/em2.sock,nodes=2,shards=16`);
//! * [`node`] — the [`NodeRuntime`]: one process's shard fleet wired
//!   to its peers, with node 0 coordinating barriers and the
//!   cluster-wide quiesce decision;
//! * [`report`] — summable per-node counter summaries, so separate
//!   processes can prove the agreement property (counters sum
//!   **bit-equal** to the single-process run) through plain files;
//! * [`error`] — the typed [`ClusterError`] taxonomy: every way a
//!   cluster run can fail, as a value — `finish()` returns `Err`, it
//!   never panics or hangs on a sick cluster (DESIGN.md §10);
//! * [`chaos`] — deterministic fault injection: a
//!   [`ChaosTransport`] wraps any transport and applies a seeded,
//!   scriptable [`FaultPlan`] (drop / delay / duplicate / truncate /
//!   corrupt the Nth frame on an edge, sever a connection, refuse an
//!   accept, crash a node), so `crates/net/tests/chaos.rs` can
//!   property-test recovery: under *any* plan the cluster either
//!   completes bit-equal or every node returns a typed error within
//!   its deadline.
//!
//! A migrated continuation really crosses an address space: the
//! envelope ships the serialized task context plus the decision
//! scheme's learned state, and the destination rebuilds the task
//! through its [`em2_rt::TaskRegistry`] and resumes it — the paper's
//! "move the computation to the data", with the process boundary where
//! the paper has a core boundary. DESIGN.md §9 documents the wire
//! format, the node lifecycle, and why the loopback transport
//! preserves E11 exactness.
//!
//! ```no_run
//! use em2_net::{run_workload_cluster, ClusterSpec};
//! use em2_placement::FirstTouch;
//! use em2_rt::RtConfig;
//! use std::sync::Arc;
//!
//! // Launched twice, with node = 0 and node = 1:
//! let spec = ClusterSpec::parse("uds:/tmp/em2.sock,nodes=2,shards=16").unwrap();
//! let node = 0; // from the command line
//! let w = Arc::new(em2_trace::gen::micro::uniform(16, 16, 500, 256, 0.3, 7));
//! let placement = Arc::new(FirstTouch::build(&w, 16, 64));
//! let report = run_workload_cluster(
//!     spec,
//!     node,
//!     RtConfig::eviction_free(16, 16),
//!     &w,
//!     placement,
//!     || Box::new(em2_core::AlwaysMigrate),
//! )
//! .unwrap();
//! println!("{} over {}", report.rt, report.transport);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod cluster;
pub mod error;
pub mod node;
pub mod proto;
pub mod report;
pub mod transport;

pub use chaos::{
    run_workload_cluster_chaos, run_workload_cluster_chaos_with_handoffs, ChaosState,
    ChaosTransport, FaultAction, FaultPlan,
};
pub use cluster::{ClusterSpec, ClusterTimeouts, NodeSpec, TransportKind};
pub use error::ClusterError;
pub use node::{
    run_workload_cluster, run_workload_cluster_in_process,
    run_workload_cluster_in_process_with_handoffs, run_workload_cluster_with,
    run_workload_cluster_with_handoffs, NetReport, NodeRuntime, WireSnapshot, BOUNCE_RETRIES_ENV,
    CONNECT_TIMEOUT_ENV, HANDOFF_TIMEOUT_ENV,
};
pub use report::{merge_obs_sidecars, obs_sidecar, write_summary_with_obs, CounterSummary};
pub use transport::{
    Acceptor, Duplex, FrameRx, FrameTx, LoopbackTransport, TcpTransport, Transport, UdsTransport,
};
