//! # em2-stack
//!
//! The stack-machine EM² architecture (paper §4).
//!
//! *"Stack architectures, which do not have a random-access register
//! file, offer a natural solution … because instructions can only
//! access the top of the stack, only the top few entries must be sent
//! over to a remote core when a memory access causes a migration."*
//!
//! This crate builds that machine in full:
//!
//! * [`isa`] — a two-stack (expression + return) 32-bit stack ISA in
//!   the Forth/B5000 lineage the paper cites (Koopman \[16\]);
//! * [`asm`] — a text assembler/disassembler with labels;
//! * [`machine`] — the reference interpreter with unbounded stacks;
//! * [`cache`] — the hardware stack cache: a fixed number of resident
//!   top-of-stack entries backed by stack memory at the thread's
//!   native core, with automatic spill/refill (the mechanism behind
//!   the §4 "automatic migration back on overflow/underflow");
//! * [`program`] — kernel builders (dot product, 1-D stencil, memcpy,
//!   recursive call trees) used by the E6 experiments;
//! * [`visits`] — runs a program against a data placement and extracts
//!   the [`em2_optimal::StackVisit`] sequence (per-visit stack demand
//!   and growth) consumed by the §4 depth-decision DP;
//! * [`adapter`] — converts program executions into
//!   [`em2_trace::ThreadTrace`]s so stack workloads run on the main
//!   EM² event simulator with stack-sized contexts.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adapter;
pub mod asm;
pub mod cache;
pub mod isa;
pub mod machine;
pub mod program;
pub mod visits;

pub use adapter::{programs_to_workload, to_thread_trace};
pub use asm::{assemble, disassemble, AsmError};
pub use cache::{SpillStats, StackCache};
pub use isa::Op;
pub use machine::{Effect, MachineError, SparseMemory, StackMachine, StackMemory};
pub use visits::{extract_visits, VisitTrace};
