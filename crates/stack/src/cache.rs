//! The hardware stack cache.
//!
//! Paper §4: *"the top few entries of each stack are typically cached
//! in registers and backed by a region of main memory with overflows
//! and underflows of the stack cache automatically and transparently
//! handled in hardware."*
//!
//! [`StackCache`] keeps up to `capacity` top-of-stack entries resident;
//! pushes beyond capacity **spill** the bottom half to the backing
//! stack memory (sequential stores), and pops past the resident
//! portion **refill** from it (sequential loads). The backing region
//! lives at the thread's *native* core — which is exactly why a
//! migrated stack that under/overflows drags the thread home (§4's
//! automatic bounce).

use crate::machine::StackMemory;

/// Spill/refill accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Spill events (bulk store of half the cache).
    pub spills: u64,
    /// Words written to backing memory by spills.
    pub spilled_words: u64,
    /// Refill events.
    pub refills: u64,
    /// Words read back from backing memory.
    pub refilled_words: u64,
}

/// A stack whose top `capacity` entries are register-resident and whose
/// remainder lives in a backing memory region.
#[derive(Clone, Debug)]
pub struct StackCache {
    /// Resident top entries; `resident[0]` is the *deepest* resident
    /// entry, the last element is the top of stack.
    resident: Vec<u32>,
    /// Entries spilled to memory (below every resident entry).
    in_memory: u64,
    capacity: usize,
    /// Base byte address of the backing region; entry `i` (from the
    /// bottom of the whole stack) lives at `base + 4i`.
    base: u32,
    stats: SpillStats,
}

impl StackCache {
    /// A stack cache of `capacity` entries backed at byte `base`.
    ///
    /// # Panics
    /// Panics unless `capacity >= 2` (hardware needs at least two for
    /// binary ops) and `base` is 4-byte aligned.
    pub fn new(capacity: usize, base: u32) -> Self {
        assert!(capacity >= 2, "stack cache needs at least 2 entries");
        assert_eq!(base % 4, 0, "backing region must be word aligned");
        StackCache {
            resident: Vec::with_capacity(capacity),
            in_memory: 0,
            capacity,
            base,
            stats: SpillStats::default(),
        }
    }

    /// Total logical depth (resident + spilled).
    pub fn depth(&self) -> u64 {
        self.in_memory + self.resident.len() as u64
    }

    /// Number of register-resident entries.
    pub fn resident_len(&self) -> usize {
        self.resident.len()
    }

    /// Cache capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Spill/refill statistics.
    pub fn stats(&self) -> SpillStats {
        self.stats
    }

    /// Push a word, spilling the bottom half of the cache if full.
    pub fn push(&mut self, v: u32, mem: &mut dyn StackMemory) {
        if self.resident.len() == self.capacity {
            // Spill the deepest half to memory (hysteresis: spilling a
            // single entry would thrash on push/pop cycles).
            let spill = self.capacity / 2;
            for w in self.resident.drain(..spill) {
                let addr = self.base + 4 * self.in_memory as u32;
                mem.store(addr, w);
                self.in_memory += 1;
                self.stats.spilled_words += 1;
            }
            self.stats.spills += 1;
        }
        self.resident.push(v);
    }

    /// Pop a word, refilling from memory when the resident portion is
    /// exhausted. Returns `None` only if the whole stack is empty.
    pub fn pop(&mut self, mem: &mut dyn StackMemory) -> Option<u32> {
        if self.resident.is_empty() {
            if self.in_memory == 0 {
                return None;
            }
            // Refill up to half the capacity.
            let refill = (self.capacity / 2).min(self.in_memory as usize).max(1);
            let mut chunk = Vec::with_capacity(refill);
            for _ in 0..refill {
                self.in_memory -= 1;
                let addr = self.base + 4 * self.in_memory as u32;
                chunk.push(mem.load(addr));
                self.stats.refilled_words += 1;
            }
            // `chunk` was read top-down; deepest first in `resident`.
            chunk.reverse();
            self.resident = chunk;
            self.stats.refills += 1;
        }
        self.resident.pop()
    }

    /// Peek the top of stack (refills if needed).
    pub fn top(&mut self, mem: &mut dyn StackMemory) -> Option<u32> {
        let v = self.pop(mem)?;
        self.push(v, mem);
        Some(v)
    }

    /// Detach the top `n` resident entries (for a §4 partial-depth
    /// migration) and flush the rest to backing memory. Returns the
    /// carried entries, deepest first.
    pub fn carry_top(&mut self, n: usize, mem: &mut dyn StackMemory) -> Vec<u32> {
        let keep = n.min(self.resident.len());
        let carried = self.resident.split_off(self.resident.len() - keep);
        // Flush everything that stays behind.
        let leftovers: Vec<u32> = self.resident.drain(..).collect();
        for w in leftovers {
            let addr = self.base + 4 * self.in_memory as u32;
            mem.store(addr, w);
            self.in_memory += 1;
            self.stats.spilled_words += 1;
        }
        carried
    }

    /// Re-attach carried entries (deepest first) after a migration.
    pub fn restore_carry(&mut self, carried: &[u32], mem: &mut dyn StackMemory) {
        for &w in carried {
            self.push(w, mem);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::SparseMemory;
    use em2_model::DetRng;

    #[test]
    fn behaves_like_a_plain_stack() {
        let mut mem = SparseMemory::new();
        let mut c = StackCache::new(4, 0x1000);
        for i in 0..10 {
            c.push(i, &mut mem);
        }
        assert_eq!(c.depth(), 10);
        for i in (0..10).rev() {
            assert_eq!(c.pop(&mut mem), Some(i));
        }
        assert_eq!(c.pop(&mut mem), None);
        assert!(c.stats().spills > 0, "must have spilled");
        assert!(c.stats().refills > 0, "must have refilled");
    }

    #[test]
    fn random_ops_match_reference_vec() {
        let mut rng = DetRng::new(77);
        let mut mem = SparseMemory::new();
        let mut c = StackCache::new(8, 0x2000);
        let mut reference: Vec<u32> = Vec::new();
        for _ in 0..10_000 {
            if rng.chance(0.55) || reference.is_empty() {
                let v = rng.next_u64() as u32;
                c.push(v, &mut mem);
                reference.push(v);
            } else {
                assert_eq!(c.pop(&mut mem), reference.pop());
            }
            assert_eq!(c.depth(), reference.len() as u64);
            assert!(c.resident_len() <= 8);
        }
        // Drain fully.
        while let Some(expect) = reference.pop() {
            assert_eq!(c.pop(&mut mem), Some(expect));
        }
        assert_eq!(c.pop(&mut mem), None);
    }

    #[test]
    fn spills_write_to_backing_region() {
        let mut mem = SparseMemory::new();
        let mut c = StackCache::new(2, 0x100);
        c.push(10, &mut mem);
        c.push(20, &mut mem);
        c.push(30, &mut mem); // spills one entry (capacity/2 = 1)
        assert_eq!(mem.peek(0x100), 10, "deepest entry spilled to base");
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn top_does_not_change_depth() {
        let mut mem = SparseMemory::new();
        let mut c = StackCache::new(4, 0);
        c.push(5, &mut mem);
        assert_eq!(c.top(&mut mem), Some(5));
        assert_eq!(c.depth(), 1);
        let mut empty = StackCache::new(4, 0);
        assert_eq!(empty.top(&mut mem), None);
    }

    #[test]
    fn carry_top_splits_and_flushes() {
        let mut mem = SparseMemory::new();
        let mut c = StackCache::new(8, 0x400);
        for i in 1..=6 {
            c.push(i, &mut mem);
        }
        let carried = c.carry_top(2, &mut mem);
        assert_eq!(carried, vec![5, 6]);
        // The other 4 entries were flushed to memory.
        assert_eq!(c.resident_len(), 0);
        assert_eq!(c.depth(), 4);
        for (i, expect) in (1..=4).enumerate() {
            assert_eq!(mem.peek(0x400 + 4 * i as u32), expect);
        }
        // Restoring the carry puts the stack back together.
        c.restore_carry(&carried, &mut mem);
        assert_eq!(c.pop(&mut mem), Some(6));
        assert_eq!(c.pop(&mut mem), Some(5));
        assert_eq!(c.pop(&mut mem), Some(4), "refilled from memory");
    }

    #[test]
    fn carry_more_than_resident_is_clamped() {
        let mut mem = SparseMemory::new();
        let mut c = StackCache::new(4, 0);
        c.push(1, &mut mem);
        let carried = c.carry_top(10, &mut mem);
        assert_eq!(carried, vec![1]);
        assert_eq!(c.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_capacity_rejected() {
        StackCache::new(1, 0);
    }
}
