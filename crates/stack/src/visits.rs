//! Visit extraction: from program execution to the §4 DP's input.
//!
//! Runs a program on the reference interpreter while watching both the
//! memory effects (whose homes — under the given placement — delimit
//! *visits*) and the combined stack depth (whose excursions within a
//! visit are the depth *demand* and *growth* the stack cache must
//! cover remotely). The result feeds
//! [`em2_optimal::stack_depth::stack_optimal`] and the fixed-depth
//! evaluators.

use crate::machine::{Effect, MachineError, StackMachine, StackMemory};
use em2_model::CoreId;
use em2_optimal::StackVisit;
use em2_placement::Placement;

/// The extracted visit sequence of one program run.
#[derive(Clone, Debug)]
pub struct VisitTrace {
    /// Core the thread starts on (its native core).
    pub start: CoreId,
    /// Maximal same-home access runs with their stack excursions.
    pub visits: Vec<StackVisit>,
    /// Total memory accesses.
    pub total_accesses: u64,
    /// Total instructions executed.
    pub total_steps: u64,
    /// Peak combined stack depth across the run.
    pub peak_depth: u64,
}

impl VisitTrace {
    /// Visits homed away from the start core (the ones that cost).
    pub fn remote_visits(&self) -> usize {
        self.visits.iter().filter(|v| v.home != self.start).count()
    }

    /// Largest per-visit stack demand.
    pub fn max_demand(&self) -> u32 {
        self.visits.iter().map(|v| v.demand).max().unwrap_or(0)
    }
}

struct OpenVisit {
    home: CoreId,
    reads: u32,
    writes: u32,
    entry_depth: u64,
    min_depth: u64,
    max_depth: u64,
}

impl OpenVisit {
    fn close(self) -> StackVisit {
        StackVisit {
            home: self.home,
            reads: self.reads,
            writes: self.writes,
            demand: self.entry_depth.saturating_sub(self.min_depth) as u32,
            produce: self.max_depth.saturating_sub(self.entry_depth) as u32,
        }
    }
}

/// Execute `machine` to completion (bounded by `max_steps`) and
/// extract its visit trace under `placement`, starting at `native`.
pub fn extract_visits(
    mut machine: StackMachine,
    mem: &mut dyn StackMemory,
    placement: &dyn Placement,
    native: CoreId,
    max_steps: u64,
) -> Result<VisitTrace, MachineError> {
    let mut visits: Vec<StackVisit> = Vec::new();
    let mut open: Option<OpenVisit> = None;
    let mut total_accesses = 0u64;
    let mut peak_depth = 0u64;

    loop {
        if machine.steps() >= max_steps {
            return Err(MachineError::StepBudgetExceeded);
        }
        let depth_before = machine.depth() as u64;
        let pops = machine
            .program()
            .get(machine.pc)
            .map_or(0, |op| op.pops() as u64);
        let effect = machine.step(mem)?;
        let depth_after = machine.depth() as u64;
        peak_depth = peak_depth.max(depth_after);
        // The op reads its operands before writing results: the
        // transient trough is depth_before - pops.
        let trough = depth_before.saturating_sub(pops);

        match effect {
            Effect::Halted => break,
            Effect::Read(addr) | Effect::Write(addr) => {
                total_accesses += 1;
                let home = placement.home_of(addr);
                let is_write = matches!(effect, Effect::Write(_));
                match open.as_mut() {
                    Some(v) if v.home == home => {
                        v.min_depth = v.min_depth.min(trough);
                        v.max_depth = v.max_depth.max(depth_after);
                        if is_write {
                            v.writes += 1;
                        } else {
                            v.reads += 1;
                        }
                    }
                    _ => {
                        if let Some(v) = open.take() {
                            visits.push(v.close());
                        }
                        // The migration happens just before this
                        // access: entry depth is the pre-op depth.
                        open = Some(OpenVisit {
                            home,
                            reads: u32::from(!is_write),
                            writes: u32::from(is_write),
                            entry_depth: depth_before,
                            min_depth: trough,
                            max_depth: depth_before.max(depth_after),
                        });
                    }
                }
            }
            Effect::Compute => {
                if let Some(v) = open.as_mut() {
                    v.min_depth = v.min_depth.min(trough);
                    v.max_depth = v.max_depth.max(depth_after);
                }
            }
        }
    }
    if let Some(v) = open.take() {
        visits.push(v.close());
    }

    Ok(VisitTrace {
        start: native,
        visits,
        total_accesses,
        total_steps: machine.steps(),
        peak_depth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::SparseMemory;
    use crate::program;
    use em2_placement::{BlockOwner, Striped};

    #[test]
    fn private_program_has_single_home_visits() {
        // All data in one block homed at core 0.
        let mut mem = SparseMemory::new();
        mem.load_words(0x1000, &[1, 2, 3, 4]);
        let k = program::dot_product(0x1000, 0x1010, 4, 0x1020);
        let placement = BlockOwner::new(4, 0, 1 << 20, 64);
        let vt = extract_visits(
            StackMachine::new(k.program),
            &mut mem,
            &placement,
            CoreId(0),
            100_000,
        )
        .unwrap();
        assert_eq!(vt.visits.len(), 1, "one home ⇒ one visit: {:?}", vt.visits);
        assert_eq!(vt.visits[0].home, CoreId(0));
        assert_eq!(vt.remote_visits(), 0);
        assert_eq!(
            vt.visits[0].accesses() as u64,
            vt.total_accesses,
            "every access in the single visit"
        );
    }

    #[test]
    fn split_arrays_alternate_homes() {
        // a[] homed at core 0, b[] at core 1 (64 KiB blocks).
        let mut mem = SparseMemory::new();
        let n = 8u32;
        mem.load_words(0x0000, &(1..=n).collect::<Vec<_>>());
        mem.load_words(0x1_0000, &(1..=n).map(|x| 2 * x).collect::<Vec<_>>());
        let k = program::dot_product(0x0000, 0x1_0000, n, 0x0100);
        let placement = BlockOwner::new(2, 0, 2 << 16, 64);
        let vt = extract_visits(
            StackMachine::new(k.program),
            &mut mem,
            &placement,
            CoreId(0),
            1_000_000,
        )
        .unwrap();
        // Per iteration: a-load at home 0 (with the result store at the
        // end), b-load at home 1 → homes alternate.
        assert!(vt.visits.len() >= 2 * n as usize, "{:?}", vt.visits.len());
        for w in vt.visits.windows(2) {
            assert_ne!(w[0].home, w[1].home, "visits must alternate");
        }
        let total: u64 = vt.visits.iter().map(|v| v.accesses() as u64).sum();
        assert_eq!(total, vt.total_accesses);
        assert_eq!(vt.total_accesses, 2 * n as u64 + 1); // loads + result store
    }

    #[test]
    fn demands_are_coverable_by_small_depths_in_streaming_kernels() {
        let mut mem = SparseMemory::new();
        mem.load_words(0x1000, &[5u32; 32]);
        let k = program::memcpy(0x1000, 0x8000, 32);
        let placement = Striped::new(4, 64);
        let vt = extract_visits(
            StackMachine::new(k.program),
            &mut mem,
            &placement,
            CoreId(0),
            1_000_000,
        )
        .unwrap();
        assert!(
            vt.max_demand() <= 4,
            "streaming loop is shallow: {}",
            vt.max_demand()
        );
        assert!(vt.peak_depth <= 8);
    }

    #[test]
    fn tree_sum_demands_grow_with_recursion() {
        let mut mem = SparseMemory::new();
        mem.load_words(0x1000, &vec![1u32; 64]);
        let k = program::tree_sum(0x1000, 64, 0x9000);
        // Data striped: leaves hit many homes while the stack is deep.
        let placement = Striped::new(4, 64);
        let vt = extract_visits(
            StackMachine::new(k.program),
            &mut mem,
            &placement,
            CoreId(0),
            1_000_000,
        )
        .unwrap();
        assert!(vt.peak_depth > 12);
        // Demand stays tiny even though absolute depth is large: only
        // the top of the stack is consumed at a leaf. That asymmetry
        // is exactly why §4's partial-depth migration wins.
        assert!(vt.max_demand() < vt.peak_depth as u32);
        assert!(vt.remote_visits() > 0);
    }

    #[test]
    fn visit_counts_match_analysis_semantics() {
        // Same definition as run-length analysis: one visit per
        // maximal same-home run.
        let mut mem = SparseMemory::new();
        mem.load_words(0x0, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let k = program::memcpy(0x0, 0x1_0000, 8);
        let placement = BlockOwner::new(2, 0, 2 << 16, 64);
        let vt = extract_visits(
            StackMachine::new(k.program),
            &mut mem,
            &placement,
            CoreId(0),
            100_000,
        )
        .unwrap();
        // load src (home 0), store dst (home 1), alternating per word.
        assert_eq!(vt.visits.len(), 16);
        assert!(vt.visits.iter().all(|v| v.accesses() == 1));
    }

    #[test]
    fn budget_guard_fires() {
        let k = program::fib(25);
        let mut mem = SparseMemory::new();
        let placement = Striped::new(2, 64);
        let r = extract_visits(
            StackMachine::new(k.program),
            &mut mem,
            &placement,
            CoreId(0),
            10,
        );
        assert_eq!(r.unwrap_err(), MachineError::StepBudgetExceeded);
    }
}
