//! Bridge from stack-machine programs to the main EM² simulator.
//!
//! [`to_thread_trace`] executes a program on the reference interpreter
//! and records its memory accesses as an [`em2_trace::ThreadTrace`] —
//! with `gap` fields counting the non-memory instructions between
//! accesses — so stack workloads run on the *same* event-driven
//! machine as everything else (contexts, evictions, caches, decision
//! schemes). This closes the loop between §4's architecture and §2's
//! machine model: the stack program's migrations can be simulated with
//! stack-sized contexts via [`em2_model::CostModelBuilder::context_bits`].

use crate::machine::{Effect, MachineError, StackMachine, StackMemory};
use em2_model::{CoreId, ThreadId};
use em2_trace::{ThreadTrace, Workload};

/// Execute `machine` to completion and return its access stream as a
/// thread trace for `thread` native to `native`.
pub fn to_thread_trace(
    mut machine: StackMachine,
    mem: &mut dyn StackMemory,
    thread: ThreadId,
    native: CoreId,
    max_steps: u64,
) -> Result<ThreadTrace, MachineError> {
    let mut trace = ThreadTrace::new(thread, native);
    let mut gap: u32 = 0;
    loop {
        if machine.steps() >= max_steps {
            return Err(MachineError::StepBudgetExceeded);
        }
        match machine.step(mem)? {
            Effect::Compute => gap = gap.saturating_add(1),
            Effect::Read(addr) => {
                trace.read(gap, addr);
                gap = 0;
            }
            Effect::Write(addr) => {
                trace.write(gap, addr);
                gap = 0;
            }
            Effect::Halted => break,
        }
    }
    Ok(trace)
}

/// Run one program per thread (same program text, per-thread data
/// bases are the caller's job) and bundle them as a workload. Threads
/// are assigned native cores round-robin over `cores`.
pub fn programs_to_workload(
    name: &str,
    programs: Vec<(StackMachine, Box<dyn StackMemory>)>,
    cores: usize,
    max_steps: u64,
) -> Result<Workload, MachineError> {
    let traces = programs
        .into_iter()
        .enumerate()
        .map(|(i, (m, mut mem))| {
            to_thread_trace(
                m,
                mem.as_mut(),
                ThreadId(i as u32),
                CoreId((i % cores) as u16),
                max_steps,
            )
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Workload::new(name, traces))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::SparseMemory;
    use crate::program;

    #[test]
    fn gaps_count_compute_instructions() {
        // lit lit store → 2 compute gaps before the store.
        let prog = crate::asm::assemble("lit 7\nlit 64\nstore\nhalt").unwrap();
        let mut mem = SparseMemory::new();
        let t = to_thread_trace(
            StackMachine::new(prog),
            &mut mem,
            ThreadId(0),
            CoreId(0),
            1_000,
        )
        .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.records[0].gap, 2);
        assert!(t.records[0].is_write());
        assert_eq!(t.records[0].addr.0, 64);
    }

    #[test]
    fn trace_access_count_matches_interpreter() {
        let n = 64u32;
        let k = program::memcpy(0x1000, 0x8000, n);
        let mut mem = SparseMemory::new();
        mem.load_words(0x1000, &vec![9u32; n as usize]);
        let t = to_thread_trace(
            StackMachine::new(k.program),
            &mut mem,
            ThreadId(0),
            CoreId(0),
            1_000_000,
        )
        .unwrap();
        // One load + one store per word.
        assert_eq!(t.len(), 2 * n as usize);
    }

    #[test]
    fn stack_program_runs_on_the_em2_simulator() {
        use em2_placement::Striped;

        let n = 128u32;
        let k = program::dot_product(0x0000, 0x4_0100, n, 0x8_0000);
        let mut mem = SparseMemory::new();
        mem.load_words(0x0000, &vec![1u32; n as usize]);
        mem.load_words(0x4_0100, &vec![2u32; n as usize]);
        let t = to_thread_trace(
            StackMachine::new(k.program),
            &mut mem,
            ThreadId(0),
            CoreId(0),
            10_000_000,
        )
        .unwrap();
        let w = Workload::new("stack-dot", vec![t]);
        let p = Striped::new(4, 256);
        // A stack-sized context: 8 words + PC + control ≈ 304 bits.
        let cost = em2_model::CostModel::builder()
            .cores(4)
            .context_bits(304)
            .build();
        // Imported lazily to keep the dependency direction clean: this
        // test only runs when em2-core is available as a dev-dep.
        let report = em2_core_shim::run(cost, &w, &p);
        assert!(report.0 > 0, "migrations expected for striped arrays");
        assert_eq!(report.1, w.total_accesses() as u64);
    }

    /// Minimal shim so the test above doesn't create a circular
    /// *build* dependency: em2-core is a dev-dependency only.
    mod em2_core_shim {
        use em2_core::machine::MachineConfig;
        use em2_core::sim::run_em2;
        use em2_placement::Placement;
        use em2_trace::Workload;

        pub fn run(cost: em2_model::CostModel, w: &Workload, p: &dyn Placement) -> (u64, u64) {
            let cfg = MachineConfig {
                cost,
                ..MachineConfig::with_cores(cost.cores())
            };
            let r = run_em2(cfg, w, p);
            assert!(r.violations.is_empty(), "{:?}", r.violations);
            (r.flow.migrations, r.flow.total_accesses())
        }
    }

    #[test]
    fn workload_bundles_multiple_programs() {
        let mk = |seed: u32| {
            let prog =
                crate::asm::assemble(&format!("lit {seed}\nlit 64\nstore\nlit 64\nload\nhalt"))
                    .unwrap();
            (
                StackMachine::new(prog),
                Box::new(SparseMemory::new()) as Box<dyn StackMemory>,
            )
        };
        let w = programs_to_workload("multi", vec![mk(1), mk(2), mk(3)], 2, 1_000).unwrap();
        assert_eq!(w.num_threads(), 3);
        assert_eq!(w.native_of(ThreadId(2)), CoreId(0)); // round-robin
        assert_eq!(w.total_accesses(), 6);
    }

    #[test]
    fn budget_propagates() {
        let k = program::fib(30);
        let mut mem = SparseMemory::new();
        let r = to_thread_trace(
            StackMachine::new(k.program),
            &mut mem,
            ThreadId(0),
            CoreId(0),
            100,
        );
        assert_eq!(r.unwrap_err(), MachineError::StepBudgetExceeded);
    }
}
