//! Kernel builders: the stack programs the §4 experiments run.
//!
//! Each builder returns a [`Kernel`]: assembled program plus the
//! address map its data lives at. The kernels span the structural
//! range that matters for stack-EM²: streaming loops with shallow
//! stacks (`dot_product`, `memcpy`, `stencil1d`), and recursive
//! kernels whose return stack grows deep right where the memory
//! accesses happen (`tree_sum`) — the adversarial case for small
//! migrated depths.

use crate::asm::assemble;
use crate::isa::Op;

/// A built kernel.
#[derive(Clone, Debug)]
pub struct Kernel {
    /// Kernel name.
    pub name: &'static str,
    /// Assembly source (for docs/inspection).
    pub source: String,
    /// Assembled program.
    pub program: Vec<Op>,
    /// Where the scalar result is stored, if any.
    pub result_addr: Option<u32>,
}

/// `result = Σ a[i] * b[i]` over `n` 32-bit words.
/// `a` at `a_base`, `b` at `b_base`, result stored to `result_addr`.
pub fn dot_product(a_base: u32, b_base: u32, n: u32, result_addr: u32) -> Kernel {
    let source = format!(
        r"
            lit 0           ; sum
            lit 0           ; i
        loop:
            dup
            lit {n}
            lt
            jz done         ; while i < n
            dup             ; sum i i
            lit 4
            mul
            lit {a_base}
            add
            load            ; sum i a[i]
            over            ; sum i a[i] i
            lit 4
            mul
            lit {b_base}
            add
            load            ; sum i a[i] b[i]
            mul             ; sum i prod
            rot             ; i prod sum
            add             ; i sum'
            swap            ; sum' i
            lit 1
            add
            jmp loop
        done:
            drop            ; sum
            lit {result_addr}
            store
            halt
        "
    );
    let program = assemble(&source).expect("dot_product assembles");
    Kernel {
        name: "dot_product",
        source,
        program,
        result_addr: Some(result_addr),
    }
}

/// Copy `n` words from `src` to `dst`.
pub fn memcpy(src: u32, dst: u32, n: u32) -> Kernel {
    let source = format!(
        r"
            lit 0           ; i
        loop:
            dup
            lit {n}
            lt
            jz done
            dup
            lit 4
            mul
            lit {src}
            add
            load            ; i v
            over
            lit 4
            mul
            lit {dst}
            add             ; i v addr
            store           ; i
            lit 1
            add
            jmp loop
        done:
            drop
            halt
        "
    );
    let program = assemble(&source).expect("memcpy assembles");
    Kernel {
        name: "memcpy",
        source,
        program,
        result_addr: None,
    }
}

/// 3-point stencil: `dst[i] = src[i-1] + src[i] + src[i+1]` for
/// `i ∈ 1..n-1`.
pub fn stencil1d(src: u32, dst: u32, n: u32) -> Kernel {
    let last = n - 1;
    let source = format!(
        r"
            lit 1           ; i
        loop:
            dup
            lit {last}
            lt
            jz done
            dup
            lit 1
            sub
            lit 4
            mul
            lit {src}
            add
            load            ; i s[i-1]
            over
            lit 4
            mul
            lit {src}
            add
            load            ; i s- s0
            add             ; i partial
            over
            lit 1
            add
            lit 4
            mul
            lit {src}
            add
            load            ; i partial s+
            add             ; i v
            over
            lit 4
            mul
            lit {dst}
            add             ; i v addr
            store           ; i
            lit 1
            add
            jmp loop
        done:
            drop
            halt
        "
    );
    let program = assemble(&source).expect("stencil1d assembles");
    Kernel {
        name: "stencil1d",
        source,
        program,
        result_addr: None,
    }
}

/// Recursive binary-tree sum of `n` words at `base` (n must be a power
/// of two); result stored to `result_addr`. The return stack is
/// ~3·log₂(n) deep at the leaves, where the loads happen.
pub fn tree_sum(base: u32, n: u32, result_addr: u32) -> Kernel {
    assert!(n.is_power_of_two(), "tree_sum needs a power-of-two length");
    let source = format!(
        r"
            lit 0
            lit {n}
            call tree
            lit {result_addr}
            store
            halt
        tree:               ; ( lo hi -- sum )
            over
            over
            swap
            sub             ; lo hi (hi-lo)
            lit 1
            eq
            jz split
            drop            ; lo       (leaf: drop hi)
            lit 4
            mul
            lit {base}
            add
            load            ; a[lo]
            ret
        split:
            over
            over
            add
            lit 1
            shr             ; lo hi mid
            dup
            tor             ; lo hi mid   (R: mid)
            swap
            tor             ; lo mid      (R: mid hi)
            call tree       ; s1          (R: mid hi)
            fromr           ; s1 hi       (R: mid)
            fromr           ; s1 hi mid   (R: )
            swap            ; s1 mid hi
            call tree       ; s1 s2
            add
            ret
        "
    );
    let program = assemble(&source).expect("tree_sum assembles");
    Kernel {
        name: "tree_sum",
        source,
        program,
        result_addr: Some(result_addr),
    }
}

/// Naive recursive Fibonacci — no memory traffic at all; exercises
/// call/return and serves as the pure-compute control.
pub fn fib(n: u32) -> Kernel {
    let source = format!(
        r"
            lit {n}
            call fib
            halt
        fib:                ; ( n -- fib(n) )
            dup
            lit 2
            lt
            jz rec
            ret             ; n < 2: fib(n) = n
        rec:
            dup
            lit 1
            sub
            call fib        ; n f(n-1)
            swap
            lit 2
            sub
            call fib        ; f(n-1) f(n-2)
            add
            ret
        "
    );
    let program = assemble(&source).expect("fib assembles");
    Kernel {
        name: "fib",
        source,
        program,
        result_addr: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{SparseMemory, StackMachine};

    fn run(kernel: &Kernel, mem: &mut SparseMemory, budget: u64) -> StackMachine {
        let mut m = StackMachine::new(kernel.program.clone());
        m.run(mem, budget).expect(kernel.name);
        m
    }

    #[test]
    fn dot_product_computes() {
        let mut mem = SparseMemory::new();
        let a: Vec<u32> = (1..=8).collect();
        let b: Vec<u32> = (1..=8).map(|x| x * 10).collect();
        mem.load_words(0x1000, &a);
        mem.load_words(0x2000, &b);
        let k = dot_product(0x1000, 0x2000, 8, 0x3000);
        run(&k, &mut mem, 100_000);
        let expect: u32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(mem.peek(0x3000), expect);
    }

    #[test]
    fn memcpy_copies() {
        let mut mem = SparseMemory::new();
        let data: Vec<u32> = (0..16).map(|x| x * 7 + 1).collect();
        mem.load_words(0x1000, &data);
        let k = memcpy(0x1000, 0x4000, 16);
        run(&k, &mut mem, 100_000);
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(mem.peek(0x4000 + 4 * i as u32), v);
        }
    }

    #[test]
    fn stencil_computes() {
        let mut mem = SparseMemory::new();
        let src: Vec<u32> = (0..10).map(|x| x * x).collect();
        mem.load_words(0x1000, &src);
        let k = stencil1d(0x1000, 0x5000, 10);
        run(&k, &mut mem, 100_000);
        for i in 1..9usize {
            let expect = src[i - 1] + src[i] + src[i + 1];
            assert_eq!(mem.peek(0x5000 + 4 * i as u32), expect, "i={i}");
        }
    }

    #[test]
    fn tree_sum_computes() {
        let mut mem = SparseMemory::new();
        let data: Vec<u32> = (1..=16).collect();
        mem.load_words(0x1000, &data);
        let k = tree_sum(0x1000, 16, 0x6000);
        run(&k, &mut mem, 100_000);
        assert_eq!(mem.peek(0x6000), data.iter().sum::<u32>());
    }

    #[test]
    fn fib_computes() {
        let mut mem = SparseMemory::new();
        let k = fib(12);
        let m = run(&k, &mut mem, 1_000_000);
        assert_eq!(m.expr, vec![144]);
    }

    #[test]
    fn tree_sum_goes_deep() {
        let mut mem = SparseMemory::new();
        mem.load_words(0x1000, &vec![1u32; 64]);
        let k = tree_sum(0x1000, 64, 0x6000);
        let mut m = StackMachine::new(k.program.clone());
        let mut max_depth = 0;
        while !m.halted() {
            m.step(&mut mem).unwrap();
            max_depth = max_depth.max(m.depth());
        }
        assert!(
            max_depth > 12,
            "recursion must deepen the stacks: {max_depth}"
        );
        assert_eq!(mem.peek(0x6000), 64);
    }

    #[test]
    fn kernels_expose_sources() {
        let k = dot_product(0, 0x100, 4, 0x200);
        assert!(k.source.contains("loop:"));
        assert!(!k.program.is_empty());
    }
}
