//! Text assembler / disassembler for the stack ISA.
//!
//! Syntax: one instruction per line; `label:` defines a jump target;
//! `;` or `#` start comments. Operands are decimal immediates (`lit`)
//! or label names (`jmp`, `jz`, `call`).
//!
//! ```
//! use em2_stack::{assemble, StackMachine, SparseMemory};
//!
//! let prog = assemble(r"
//!     lit 21
//!     call double
//!     halt
//! double:
//!     dup
//!     add
//!     ret
//! ").unwrap();
//! let mut m = StackMachine::new(prog);
//! let mut mem = SparseMemory::new();
//! m.run(&mut mem, 100).unwrap();
//! assert_eq!(m.expr, vec![42]);
//! ```

use crate::isa::Op;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Assembly errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// Unknown mnemonic at 1-based line.
    UnknownMnemonic(usize, String),
    /// Missing or malformed operand.
    BadOperand(usize, String),
    /// Jump/call to an undefined label.
    UndefinedLabel(String),
    /// The same label defined twice.
    DuplicateLabel(String),
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::UnknownMnemonic(l, m) => write!(f, "line {l}: unknown mnemonic {m:?}"),
            AsmError::BadOperand(l, m) => write!(f, "line {l}: bad operand {m:?}"),
            AsmError::UndefinedLabel(l) => write!(f, "undefined label {l:?}"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label {l:?}"),
        }
    }
}

impl std::error::Error for AsmError {}

enum PendingOp {
    Done(Op),
    Jmp(String),
    Jz(String),
    Call(String),
}

/// Assemble source text into a program.
pub fn assemble(src: &str) -> Result<Vec<Op>, AsmError> {
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut pending: Vec<(usize, PendingOp)> = Vec::new();

    for (lineno, raw) in src.lines().enumerate() {
        let line = raw.split([';', '#']).next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut rest = line;
        // Leading labels (possibly several on one line).
        while let Some(colon) = rest.find(':') {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            if labels
                .insert(label.to_string(), pending.len() as u32)
                .is_some()
            {
                return Err(AsmError::DuplicateLabel(label.to_string()));
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let mut parts = rest.split_whitespace();
        let mnemonic = parts.next().unwrap().to_lowercase();
        let operand = parts.next();
        let n = lineno + 1;
        if let Some(extra) = parts.next() {
            return Err(AsmError::BadOperand(n, format!("trailing token {extra:?}")));
        }
        let op = match mnemonic.as_str() {
            "lit" => {
                let text = operand.ok_or_else(|| AsmError::BadOperand(n, rest.into()))?;
                let v = if let Some(hex) = text.strip_prefix("0x") {
                    u32::from_str_radix(hex, 16)
                } else {
                    text.parse()
                }
                .map_err(|_| AsmError::BadOperand(n, text.into()))?;
                PendingOp::Done(Op::Lit(v))
            }
            "jmp" => PendingOp::Jmp(
                operand
                    .ok_or_else(|| AsmError::BadOperand(n, rest.into()))?
                    .to_string(),
            ),
            "jz" => PendingOp::Jz(
                operand
                    .ok_or_else(|| AsmError::BadOperand(n, rest.into()))?
                    .to_string(),
            ),
            "call" => PendingOp::Call(
                operand
                    .ok_or_else(|| AsmError::BadOperand(n, rest.into()))?
                    .to_string(),
            ),
            "add" => PendingOp::Done(Op::Add),
            "sub" => PendingOp::Done(Op::Sub),
            "mul" => PendingOp::Done(Op::Mul),
            "and" => PendingOp::Done(Op::And),
            "or" => PendingOp::Done(Op::Or),
            "xor" => PendingOp::Done(Op::Xor),
            "not" => PendingOp::Done(Op::Not),
            "shl" => PendingOp::Done(Op::Shl),
            "shr" => PendingOp::Done(Op::Shr),
            "eq" => PendingOp::Done(Op::Eq),
            "lt" => PendingOp::Done(Op::Lt),
            "gt" => PendingOp::Done(Op::Gt),
            "dup" => PendingOp::Done(Op::Dup),
            "drop" => PendingOp::Done(Op::Drop),
            "swap" => PendingOp::Done(Op::Swap),
            "over" => PendingOp::Done(Op::Over),
            "rot" => PendingOp::Done(Op::Rot),
            "nip" => PendingOp::Done(Op::Nip),
            "tor" => PendingOp::Done(Op::ToR),
            "fromr" => PendingOp::Done(Op::FromR),
            "rfetch" => PendingOp::Done(Op::RFetch),
            "load" => PendingOp::Done(Op::Load),
            "store" => PendingOp::Done(Op::Store),
            "ret" => PendingOp::Done(Op::Ret),
            "halt" => PendingOp::Done(Op::Halt),
            "nop" => PendingOp::Done(Op::Nop),
            other => return Err(AsmError::UnknownMnemonic(n, other.into())),
        };
        pending.push((n, op));
    }

    pending
        .into_iter()
        .map(|(_, p)| match p {
            PendingOp::Done(op) => Ok(op),
            PendingOp::Jmp(l) => labels
                .get(&l)
                .map(|&t| Op::Jmp(t))
                .ok_or(AsmError::UndefinedLabel(l)),
            PendingOp::Jz(l) => labels
                .get(&l)
                .map(|&t| Op::Jz(t))
                .ok_or(AsmError::UndefinedLabel(l)),
            PendingOp::Call(l) => labels
                .get(&l)
                .map(|&t| Op::Call(t))
                .ok_or(AsmError::UndefinedLabel(l)),
        })
        .collect()
}

/// Disassemble a program into re-assemblable text (numeric targets are
/// turned into generated labels).
pub fn disassemble(program: &[Op]) -> String {
    // Collect jump targets so we can emit labels.
    let mut targets: Vec<u32> = program
        .iter()
        .filter_map(|op| match op {
            Op::Jmp(t) | Op::Jz(t) | Op::Call(t) => Some(*t),
            _ => None,
        })
        .collect();
    targets.sort_unstable();
    targets.dedup();
    let label = |t: u32| format!("L{t}");

    let mut out = String::new();
    for (i, op) in program.iter().enumerate() {
        if targets.binary_search(&(i as u32)).is_ok() {
            let _ = writeln!(out, "{}:", label(i as u32));
        }
        let line = match op {
            Op::Jmp(t) => format!("jmp {}", label(*t)),
            Op::Jz(t) => format!("jz {}", label(*t)),
            Op::Call(t) => format!("call {}", label(*t)),
            other => other.to_string(),
        };
        let _ = writeln!(out, "    {line}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{SparseMemory, StackMachine};

    #[test]
    fn assembles_simple_program() {
        let p = assemble("lit 2\nlit 3\nadd\nhalt").unwrap();
        assert_eq!(p, vec![Op::Lit(2), Op::Lit(3), Op::Add, Op::Halt]);
    }

    #[test]
    fn hex_literals() {
        let p = assemble("lit 0x10\nhalt").unwrap();
        assert_eq!(p[0], Op::Lit(16));
    }

    #[test]
    fn labels_resolve_forward_and_back() {
        let p = assemble(
            r"
            start:
                lit 1
                jz start   ; backward
                jmp end    ; forward
            end:
                halt
            ",
        )
        .unwrap();
        assert_eq!(p, vec![Op::Lit(1), Op::Jz(0), Op::Jmp(3), Op::Halt]);
    }

    #[test]
    fn comments_and_blank_lines() {
        let p = assemble("# header\n  ; note\nlit 1 ; trailing\nhalt").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn errors() {
        assert!(matches!(
            assemble("frobnicate"),
            Err(AsmError::UnknownMnemonic(1, _))
        ));
        assert!(matches!(assemble("lit"), Err(AsmError::BadOperand(1, _))));
        assert!(matches!(
            assemble("lit zzz"),
            Err(AsmError::BadOperand(1, _))
        ));
        assert!(matches!(
            assemble("jmp nowhere"),
            Err(AsmError::UndefinedLabel(_))
        ));
        assert!(matches!(
            assemble("a:\nnop\na:\nnop"),
            Err(AsmError::DuplicateLabel(_))
        ));
    }

    #[test]
    fn doc_example_runs() {
        let prog = assemble(
            r"
                lit 21
                call double
                halt
            double:
                dup
                add
                ret
            ",
        )
        .unwrap();
        let mut m = StackMachine::new(prog);
        let mut mem = SparseMemory::new();
        m.run(&mut mem, 100).unwrap();
        assert_eq!(m.expr, vec![42]);
    }

    #[test]
    fn disassemble_round_trips() {
        let src = r"
            lit 5
        loop:
            dup
            jz done
            lit 1
            sub
            jmp loop
        done:
            halt
        ";
        let p1 = assemble(src).unwrap();
        let text = disassemble(&p1);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn label_on_same_line_as_instruction() {
        let p = assemble("top: lit 1\njmp top").unwrap();
        assert_eq!(p, vec![Op::Lit(1), Op::Jmp(0)]);
    }
}
