//! The reference stack-machine interpreter (unbounded stacks).
//!
//! This is the *semantic* machine: correctness oracle for the cached
//! machine in [`crate::cache`] and execution engine for visit
//! extraction. One [`StackMachine::step`] executes one instruction and
//! reports its memory effect, which the EM² layer turns into
//! placement/migration decisions.

use crate::isa::Op;
use em2_model::Addr;
use std::collections::HashMap;

/// Abstract 32-bit word memory, byte-addressed (word aligned).
pub trait StackMemory {
    /// Load the 32-bit word at `addr` (must be 4-byte aligned).
    fn load(&mut self, addr: u32) -> u32;
    /// Store a 32-bit word to `addr` (must be 4-byte aligned).
    fn store(&mut self, addr: u32, value: u32);
}

/// Simple sparse memory for running programs.
#[derive(Clone, Debug, Default)]
pub struct SparseMemory {
    words: HashMap<u32, u32>,
}

impl SparseMemory {
    /// An empty memory (all zeroes).
    pub fn new() -> Self {
        SparseMemory::default()
    }

    /// Pre-load a slice of words starting at `base`.
    pub fn load_words(&mut self, base: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            self.words.insert(base + 4 * i as u32, w);
        }
    }

    /// Read a word without the trait's `&mut` requirement.
    pub fn peek(&self, addr: u32) -> u32 {
        *self.words.get(&addr).unwrap_or(&0)
    }
}

impl StackMemory for SparseMemory {
    fn load(&mut self, addr: u32) -> u32 {
        debug_assert_eq!(addr % 4, 0, "unaligned load at {addr:#x}");
        *self.words.get(&addr).unwrap_or(&0)
    }

    fn store(&mut self, addr: u32, value: u32) {
        debug_assert_eq!(addr % 4, 0, "unaligned store at {addr:#x}");
        self.words.insert(addr, value);
    }
}

/// What one instruction did, as seen by the EM² layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effect {
    /// Non-memory instruction.
    Compute,
    /// Loaded from this byte address.
    Read(Addr),
    /// Stored to this byte address.
    Write(Addr),
    /// Program finished.
    Halted,
}

/// Interpreter errors (program bugs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineError {
    /// Expression-stack underflow at the given PC.
    ExprUnderflow(usize),
    /// Return-stack underflow at the given PC.
    RetUnderflow(usize),
    /// PC ran off the end of the program.
    PcOutOfRange(usize),
    /// Exceeded the configured step budget (runaway loop guard).
    StepBudgetExceeded,
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::ExprUnderflow(pc) => write!(f, "expression stack underflow at pc {pc}"),
            MachineError::RetUnderflow(pc) => write!(f, "return stack underflow at pc {pc}"),
            MachineError::PcOutOfRange(pc) => write!(f, "pc {pc} out of range"),
            MachineError::StepBudgetExceeded => write!(f, "step budget exceeded"),
        }
    }
}

impl std::error::Error for MachineError {}

/// The reference interpreter.
#[derive(Clone, Debug)]
pub struct StackMachine {
    program: Vec<Op>,
    /// Expression stack (top = last element).
    pub expr: Vec<u32>,
    /// Return stack (top = last element).
    pub rstack: Vec<u32>,
    /// Program counter (instruction index).
    pub pc: usize,
    halted: bool,
    steps: u64,
}

impl StackMachine {
    /// A machine about to execute `program` from instruction 0.
    pub fn new(program: Vec<Op>) -> Self {
        StackMachine {
            program,
            expr: Vec::new(),
            rstack: Vec::new(),
            pc: 0,
            halted: false,
            steps: 0,
        }
    }

    /// The loaded program.
    pub fn program(&self) -> &[Op] {
        &self.program
    }

    /// Instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// True once `Halt` executed (or the PC fell off the end).
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Combined depth of both stacks — the quantity the §4 migration
    /// carries a top-slice of.
    pub fn depth(&self) -> usize {
        self.expr.len() + self.rstack.len()
    }

    fn pop(&mut self) -> Result<u32, MachineError> {
        self.expr.pop().ok_or(MachineError::ExprUnderflow(self.pc))
    }

    /// Execute one instruction.
    pub fn step(&mut self, mem: &mut dyn StackMemory) -> Result<Effect, MachineError> {
        if self.halted {
            return Ok(Effect::Halted);
        }
        let Some(&op) = self.program.get(self.pc) else {
            return Err(MachineError::PcOutOfRange(self.pc));
        };
        self.steps += 1;
        let mut next_pc = self.pc + 1;
        let mut effect = Effect::Compute;
        match op {
            Op::Lit(n) => self.expr.push(n),
            Op::Add => {
                let b = self.pop()?;
                let a = self.pop()?;
                self.expr.push(a.wrapping_add(b));
            }
            Op::Sub => {
                let b = self.pop()?;
                let a = self.pop()?;
                self.expr.push(a.wrapping_sub(b));
            }
            Op::Mul => {
                let b = self.pop()?;
                let a = self.pop()?;
                self.expr.push(a.wrapping_mul(b));
            }
            Op::And => {
                let b = self.pop()?;
                let a = self.pop()?;
                self.expr.push(a & b);
            }
            Op::Or => {
                let b = self.pop()?;
                let a = self.pop()?;
                self.expr.push(a | b);
            }
            Op::Xor => {
                let b = self.pop()?;
                let a = self.pop()?;
                self.expr.push(a ^ b);
            }
            Op::Not => {
                let a = self.pop()?;
                self.expr.push(!a);
            }
            Op::Shl => {
                let n = self.pop()?;
                let a = self.pop()?;
                self.expr.push(a.wrapping_shl(n));
            }
            Op::Shr => {
                let n = self.pop()?;
                let a = self.pop()?;
                self.expr.push(a.wrapping_shr(n));
            }
            Op::Eq => {
                let b = self.pop()?;
                let a = self.pop()?;
                self.expr.push(u32::from(a == b));
            }
            Op::Lt => {
                let b = self.pop()?;
                let a = self.pop()?;
                self.expr.push(u32::from(a < b));
            }
            Op::Gt => {
                let b = self.pop()?;
                let a = self.pop()?;
                self.expr.push(u32::from(a > b));
            }
            Op::Dup => {
                let a = self.pop()?;
                self.expr.push(a);
                self.expr.push(a);
            }
            Op::Drop => {
                self.pop()?;
            }
            Op::Swap => {
                let b = self.pop()?;
                let a = self.pop()?;
                self.expr.push(b);
                self.expr.push(a);
            }
            Op::Over => {
                let b = self.pop()?;
                let a = self.pop()?;
                self.expr.push(a);
                self.expr.push(b);
                self.expr.push(a);
            }
            Op::Rot => {
                let c = self.pop()?;
                let b = self.pop()?;
                let a = self.pop()?;
                self.expr.push(b);
                self.expr.push(c);
                self.expr.push(a);
            }
            Op::Nip => {
                let b = self.pop()?;
                self.pop()?;
                self.expr.push(b);
            }
            Op::ToR => {
                let a = self.pop()?;
                self.rstack.push(a);
            }
            Op::FromR => {
                let a = self
                    .rstack
                    .pop()
                    .ok_or(MachineError::RetUnderflow(self.pc))?;
                self.expr.push(a);
            }
            Op::RFetch => {
                let a = *self
                    .rstack
                    .last()
                    .ok_or(MachineError::RetUnderflow(self.pc))?;
                self.expr.push(a);
            }
            Op::Load => {
                let addr = self.pop()?;
                let v = mem.load(addr);
                self.expr.push(v);
                effect = Effect::Read(Addr(addr as u64));
            }
            Op::Store => {
                let addr = self.pop()?;
                let v = self.pop()?;
                mem.store(addr, v);
                effect = Effect::Write(Addr(addr as u64));
            }
            Op::Jmp(t) => next_pc = t as usize,
            Op::Jz(t) => {
                let c = self.pop()?;
                if c == 0 {
                    next_pc = t as usize;
                }
            }
            Op::Call(t) => {
                self.rstack.push(next_pc as u32);
                next_pc = t as usize;
            }
            Op::Ret => {
                next_pc = self
                    .rstack
                    .pop()
                    .ok_or(MachineError::RetUnderflow(self.pc))? as usize;
            }
            Op::Halt => {
                self.halted = true;
                return Ok(Effect::Halted);
            }
            Op::Nop => {}
        }
        self.pc = next_pc;
        Ok(effect)
    }

    /// Run until `Halt` or the step budget is exhausted.
    pub fn run(&mut self, mem: &mut dyn StackMemory, max_steps: u64) -> Result<(), MachineError> {
        let budget = self.steps + max_steps;
        while !self.halted {
            if self.steps >= budget {
                return Err(MachineError::StepBudgetExceeded);
            }
            self.step(mem)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_expr(ops: Vec<Op>) -> Vec<u32> {
        let mut m = StackMachine::new(ops);
        let mut mem = SparseMemory::new();
        m.run(&mut mem, 10_000).unwrap();
        m.expr.clone()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(
            run_expr(vec![Op::Lit(2), Op::Lit(3), Op::Add, Op::Halt]),
            vec![5]
        );
        assert_eq!(
            run_expr(vec![Op::Lit(7), Op::Lit(3), Op::Sub, Op::Halt]),
            vec![4]
        );
        assert_eq!(
            run_expr(vec![Op::Lit(6), Op::Lit(7), Op::Mul, Op::Halt]),
            vec![42]
        );
        assert_eq!(
            run_expr(vec![Op::Lit(1), Op::Lit(3), Op::Shl, Op::Halt]),
            vec![8]
        );
        assert_eq!(
            run_expr(vec![Op::Lit(0), Op::Lit(1), Op::Sub, Op::Halt]),
            vec![u32::MAX],
            "wrapping subtraction"
        );
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            run_expr(vec![Op::Lit(2), Op::Lit(2), Op::Eq, Op::Halt]),
            vec![1]
        );
        assert_eq!(
            run_expr(vec![Op::Lit(1), Op::Lit(2), Op::Lt, Op::Halt]),
            vec![1]
        );
        assert_eq!(
            run_expr(vec![Op::Lit(1), Op::Lit(2), Op::Gt, Op::Halt]),
            vec![0]
        );
    }

    #[test]
    fn stack_shuffles() {
        assert_eq!(
            run_expr(vec![Op::Lit(1), Op::Lit(2), Op::Swap, Op::Halt]),
            vec![2, 1]
        );
        assert_eq!(
            run_expr(vec![Op::Lit(1), Op::Lit(2), Op::Over, Op::Halt]),
            vec![1, 2, 1]
        );
        assert_eq!(
            run_expr(vec![Op::Lit(1), Op::Lit(2), Op::Lit(3), Op::Rot, Op::Halt]),
            vec![2, 3, 1]
        );
        assert_eq!(
            run_expr(vec![Op::Lit(1), Op::Lit(2), Op::Nip, Op::Halt]),
            vec![2]
        );
        assert_eq!(run_expr(vec![Op::Lit(9), Op::Dup, Op::Halt]), vec![9, 9]);
    }

    #[test]
    fn return_stack_ops() {
        assert_eq!(
            run_expr(vec![
                Op::Lit(5),
                Op::ToR,
                Op::RFetch,
                Op::FromR,
                Op::Add,
                Op::Halt
            ]),
            vec![10]
        );
    }

    #[test]
    fn memory_round_trip() {
        let mut m = StackMachine::new(vec![
            Op::Lit(99),
            Op::Lit(0x100),
            Op::Store,
            Op::Lit(0x100),
            Op::Load,
            Op::Halt,
        ]);
        let mut mem = SparseMemory::new();
        let e1 = m.step(&mut mem).unwrap();
        let e2 = m.step(&mut mem).unwrap();
        let e3 = m.step(&mut mem).unwrap();
        assert_eq!(e1, Effect::Compute);
        assert_eq!(e2, Effect::Compute);
        assert_eq!(e3, Effect::Write(Addr(0x100)));
        let e4 = m.step(&mut mem).unwrap();
        let e5 = m.step(&mut mem).unwrap();
        assert_eq!(e4, Effect::Compute);
        assert_eq!(e5, Effect::Read(Addr(0x100)));
        assert_eq!(m.expr, vec![99]);
        assert_eq!(mem.peek(0x100), 99);
    }

    #[test]
    fn control_flow_loop() {
        // Sum 1..=5 with a countdown loop:
        //   acc = 0; n = 5; while n != 0 { acc += n; n -= 1 }
        // expr stack: [acc, n]
        let prog = vec![
            Op::Lit(0), // 0: acc
            Op::Lit(5), // 1: n
            Op::Dup,    // 2: loop: n n
            Op::Jz(9),  // 3: exit when n == 0
            Op::Dup,    // 4: acc n n
            Op::Rot,    // 5: n n acc -> wait: (a b c -- b c a): [acc,n,n]->[n,n,acc]
            Op::Add,    // 6: n (n+acc)
            Op::Swap,   // 7: (acc') n
            Op::Lit(1),
            // ^ pc 8
            Op::Sub, // 9... careful with indices
            Op::Jmp(2),
            Op::Halt,
        ];
        // Fix targets: exit lands on Halt at index 11; but Jz(9) pops
        // and jumps to Lit(1)? Rebuild with explicit indices:
        let prog = {
            let mut p = prog;
            p[3] = Op::Jz(11); // exit to Halt
            p
        };
        let mut m = StackMachine::new(prog);
        let mut mem = SparseMemory::new();
        m.run(&mut mem, 1000).unwrap();
        assert_eq!(m.expr, vec![15, 0]); // acc = 15, n = 0
    }

    #[test]
    fn call_and_ret() {
        // main: call double(21); halt.  double: dup add ret
        let prog = vec![
            Op::Lit(21),
            Op::Call(3),
            Op::Halt,
            Op::Dup, // double:
            Op::Add,
            Op::Ret,
        ];
        assert_eq!(run_expr(prog), vec![42]);
    }

    #[test]
    fn underflow_detected() {
        let mut m = StackMachine::new(vec![Op::Add, Op::Halt]);
        let mut mem = SparseMemory::new();
        assert!(matches!(
            m.step(&mut mem),
            Err(MachineError::ExprUnderflow(0))
        ));
        let mut m2 = StackMachine::new(vec![Op::Ret]);
        assert!(matches!(
            m2.step(&mut mem),
            Err(MachineError::RetUnderflow(0))
        ));
    }

    #[test]
    fn step_budget_guards_runaway() {
        let mut m = StackMachine::new(vec![Op::Jmp(0)]);
        let mut mem = SparseMemory::new();
        assert_eq!(m.run(&mut mem, 100), Err(MachineError::StepBudgetExceeded));
    }

    #[test]
    fn stack_effect_metadata_matches_interpreter() {
        // For every non-control op, the expression-stack delta must
        // equal pushes - pops. Setup provides exactly enough operands
        // (addresses use 4 so loads/stores stay aligned).
        let cases: Vec<(Vec<Op>, Op)> = vec![
            (vec![Op::Lit(1), Op::Lit(2)], Op::Add),
            (vec![Op::Lit(1), Op::Lit(2)], Op::Sub),
            (vec![Op::Lit(1), Op::Lit(2)], Op::Mul),
            (vec![Op::Lit(1), Op::Lit(2)], Op::And),
            (vec![Op::Lit(1), Op::Lit(2)], Op::Or),
            (vec![Op::Lit(1), Op::Lit(2)], Op::Xor),
            (vec![Op::Lit(1)], Op::Not),
            (vec![Op::Lit(1), Op::Lit(2)], Op::Shl),
            (vec![Op::Lit(1), Op::Lit(2)], Op::Shr),
            (vec![Op::Lit(1), Op::Lit(2)], Op::Eq),
            (vec![Op::Lit(1), Op::Lit(2)], Op::Lt),
            (vec![Op::Lit(1), Op::Lit(2)], Op::Gt),
            (vec![Op::Lit(1)], Op::Dup),
            (vec![Op::Lit(1)], Op::Drop),
            (vec![Op::Lit(1), Op::Lit(2)], Op::Swap),
            (vec![Op::Lit(1), Op::Lit(2)], Op::Over),
            (vec![Op::Lit(1), Op::Lit(2), Op::Lit(3)], Op::Rot),
            (vec![Op::Lit(1), Op::Lit(2)], Op::Nip),
            (vec![Op::Lit(1)], Op::ToR),
            (vec![], Op::Lit(5)),
            (vec![Op::Lit(4)], Op::Load),
            (vec![Op::Lit(9), Op::Lit(4)], Op::Store),
            (vec![], Op::Nop),
        ];
        for (setup, op) in cases {
            let mut prog = setup.clone();
            prog.push(op);
            prog.push(Op::Halt);
            let mut m = StackMachine::new(prog);
            let mut mem = SparseMemory::new();
            for _ in 0..setup.len() {
                m.step(&mut mem).unwrap();
            }
            let before = m.expr.len() as i64;
            m.step(&mut mem).unwrap();
            let after = m.expr.len() as i64;
            assert_eq!(
                after - before,
                op.pushes() as i64 - op.pops() as i64,
                "metadata mismatch for {op}"
            );
        }
    }

    #[test]
    fn halted_machine_stays_halted() {
        let mut m = StackMachine::new(vec![Op::Halt]);
        let mut mem = SparseMemory::new();
        assert_eq!(m.step(&mut mem).unwrap(), Effect::Halted);
        assert_eq!(m.step(&mut mem).unwrap(), Effect::Halted);
        assert!(m.halted());
    }
}
