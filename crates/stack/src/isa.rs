//! The stack ISA: a 32-bit, two-stack machine.
//!
//! Most instructions take their operands implicitly from the top of
//! the **expression stack**; the **return stack** holds return
//! addresses and loop counters (the classic organization the paper
//! describes, "the top few entries of each stack … cached in registers
//! and backed by a region of main memory").

use std::fmt;

/// One instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    // ---- literals & arithmetic (expression stack) ----
    /// Push an immediate: `( -- n )`.
    Lit(u32),
    /// `( a b -- a+b )` wrapping.
    Add,
    /// `( a b -- a-b )` wrapping.
    Sub,
    /// `( a b -- a*b )` wrapping.
    Mul,
    /// `( a b -- a&b )`.
    And,
    /// `( a b -- a|b )`.
    Or,
    /// `( a b -- a^b )`.
    Xor,
    /// `( a -- !a )` bitwise complement.
    Not,
    /// `( a n -- a<<n )`.
    Shl,
    /// `( a n -- a>>n )` logical.
    Shr,
    // ---- comparisons (1 = true, 0 = false) ----
    /// `( a b -- a==b )`.
    Eq,
    /// `( a b -- a<b )` unsigned.
    Lt,
    /// `( a b -- a>b )` unsigned.
    Gt,
    // ---- stack manipulation ----
    /// `( a -- a a )`.
    Dup,
    /// `( a -- )`.
    Drop,
    /// `( a b -- b a )`.
    Swap,
    /// `( a b -- a b a )`.
    Over,
    /// `( a b c -- b c a )`.
    Rot,
    /// `( a b -- b )`.
    Nip,
    // ---- return-stack traffic ----
    /// Move to return stack: `( a -- ) (R: -- a)`.
    ToR,
    /// Move from return stack: `( -- a ) (R: a -- )`.
    FromR,
    /// Copy top of return stack: `( -- a ) (R: a -- a)`.
    RFetch,
    // ---- memory ----
    /// `( addr -- [addr] )` 32-bit load from a byte address.
    Load,
    /// `( v addr -- )` 32-bit store to a byte address.
    Store,
    // ---- control flow (instruction-index targets) ----
    /// Unconditional jump.
    Jmp(u32),
    /// `( c -- )` jump when `c == 0`.
    Jz(u32),
    /// Push return address to the return stack and jump.
    Call(u32),
    /// Pop the return stack into the PC.
    Ret,
    /// Stop execution.
    Halt,
    /// Do nothing.
    Nop,
}

impl Op {
    /// Expression-stack pops.
    pub const fn pops(&self) -> u32 {
        match self {
            Op::Lit(_)
            | Op::FromR
            | Op::RFetch
            | Op::Jmp(_)
            | Op::Call(_)
            | Op::Ret
            | Op::Halt
            | Op::Nop => 0,
            Op::Not | Op::Dup | Op::Drop | Op::ToR | Op::Load | Op::Jz(_) => 1,
            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::Shl
            | Op::Shr
            | Op::Eq
            | Op::Lt
            | Op::Gt
            | Op::Swap
            | Op::Over
            | Op::Nip
            | Op::Store => 2,
            Op::Rot => 3,
        }
    }

    /// Expression-stack pushes.
    pub const fn pushes(&self) -> u32 {
        match self {
            Op::Drop
            | Op::ToR
            | Op::Store
            | Op::Jmp(_)
            | Op::Jz(_)
            | Op::Call(_)
            | Op::Ret
            | Op::Halt
            | Op::Nop => 0,
            Op::Lit(_)
            | Op::Not
            | Op::FromR
            | Op::RFetch
            | Op::Load
            | Op::Add
            | Op::Sub
            | Op::Mul
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::Shl
            | Op::Shr
            | Op::Eq
            | Op::Lt
            | Op::Gt
            | Op::Nip => 1,
            Op::Dup | Op::Swap => 2,
            Op::Over => 3,
            Op::Rot => 3,
        }
    }

    /// Return-stack depth change (+1 push, −1 pop).
    pub const fn rstack_delta(&self) -> i32 {
        match self {
            Op::ToR | Op::Call(_) => 1,
            Op::FromR | Op::Ret => -1,
            _ => 0,
        }
    }

    /// Whether this op touches data memory.
    pub const fn is_memory(&self) -> bool {
        matches!(self, Op::Load | Op::Store)
    }

    /// Mnemonic (without operand).
    pub const fn mnemonic(&self) -> &'static str {
        match self {
            Op::Lit(_) => "lit",
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Mul => "mul",
            Op::And => "and",
            Op::Or => "or",
            Op::Xor => "xor",
            Op::Not => "not",
            Op::Shl => "shl",
            Op::Shr => "shr",
            Op::Eq => "eq",
            Op::Lt => "lt",
            Op::Gt => "gt",
            Op::Dup => "dup",
            Op::Drop => "drop",
            Op::Swap => "swap",
            Op::Over => "over",
            Op::Rot => "rot",
            Op::Nip => "nip",
            Op::ToR => "tor",
            Op::FromR => "fromr",
            Op::RFetch => "rfetch",
            Op::Load => "load",
            Op::Store => "store",
            Op::Jmp(_) => "jmp",
            Op::Jz(_) => "jz",
            Op::Call(_) => "call",
            Op::Ret => "ret",
            Op::Halt => "halt",
            Op::Nop => "nop",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Lit(n) => write!(f, "lit {n}"),
            Op::Jmp(t) => write!(f, "jmp {t}"),
            Op::Jz(t) => write!(f, "jz {t}"),
            Op::Call(t) => write!(f, "call {t}"),
            other => f.write_str(other.mnemonic()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_effect_metadata_is_sane() {
        // Net effect bounds: no op pops more than 3 or pushes more than 3.
        for op in [
            Op::Lit(1),
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::And,
            Op::Or,
            Op::Xor,
            Op::Not,
            Op::Shl,
            Op::Shr,
            Op::Eq,
            Op::Lt,
            Op::Gt,
            Op::Dup,
            Op::Drop,
            Op::Swap,
            Op::Over,
            Op::Rot,
            Op::Nip,
            Op::ToR,
            Op::FromR,
            Op::RFetch,
            Op::Load,
            Op::Store,
            Op::Jmp(0),
            Op::Jz(0),
            Op::Call(0),
            Op::Ret,
            Op::Halt,
            Op::Nop,
        ] {
            assert!(op.pops() <= 3, "{op}");
            assert!(op.pushes() <= 3, "{op}");
            assert!(op.rstack_delta().abs() <= 1, "{op}");
        }
    }

    #[test]
    fn memory_flags() {
        assert!(Op::Load.is_memory());
        assert!(Op::Store.is_memory());
        assert!(!Op::Add.is_memory());
        assert!(!Op::Call(3).is_memory());
    }

    #[test]
    fn display_round() {
        assert_eq!(Op::Lit(42).to_string(), "lit 42");
        assert_eq!(Op::Jz(7).to_string(), "jz 7");
        assert_eq!(Op::Add.to_string(), "add");
    }
}
