//! Property-based tests: the stack cache against an unbounded
//! reference stack, assembler round trips, and ISA metadata
//! conformance.

use em2_model::DetRng;
use em2_stack::{assemble, disassemble, Op, SparseMemory, StackCache, StackMachine, StackMemory};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stack_cache_equals_unbounded_stack(
        ops in prop::collection::vec(any::<Option<u32>>(), 1..500),
        cap in 2usize..16,
    ) {
        // Some(v) = push v; None = pop.
        let mut mem = SparseMemory::new();
        let mut dut = StackCache::new(cap, 0x10_000);
        let mut reference: Vec<u32> = Vec::new();
        for op in ops {
            match op {
                Some(v) => {
                    dut.push(v, &mut mem);
                    reference.push(v);
                }
                None => {
                    prop_assert_eq!(dut.pop(&mut mem), reference.pop());
                }
            }
            prop_assert_eq!(dut.depth(), reference.len() as u64);
            prop_assert!(dut.resident_len() <= cap);
        }
        // Drain and compare completely.
        while let Some(want) = reference.pop() {
            prop_assert_eq!(dut.pop(&mut mem), Some(want));
        }
        prop_assert_eq!(dut.pop(&mut mem), None);
    }

    #[test]
    fn carry_top_preserves_stack_contents(
        values in prop::collection::vec(any::<u32>(), 1..64),
        carry in 0usize..20,
        cap in 4usize..12,
    ) {
        let mut mem = SparseMemory::new();
        let mut c = StackCache::new(cap, 0x20_000);
        for &v in &values {
            c.push(v, &mut mem);
        }
        let carried = c.carry_top(carry, &mut mem);
        c.restore_carry(&carried, &mut mem);
        // Popping everything returns the original sequence reversed.
        let mut out = Vec::new();
        while let Some(v) = c.pop(&mut mem) {
            out.push(v);
        }
        let mut want = values.clone();
        want.reverse();
        prop_assert_eq!(out, want);
    }

    #[test]
    fn assembler_disassembler_round_trip(seed in any::<u64>(), len in 1usize..60) {
        // Generate a random (not necessarily runnable) program with
        // valid jump targets; text round trip must be exact.
        let mut rng = DetRng::new(seed);
        let prog: Vec<Op> = (0..len)
            .map(|_| {
                let t = rng.below(len as u64) as u32;
                match rng.below(12) {
                    0 => Op::Lit(rng.next_u64() as u32),
                    1 => Op::Add,
                    2 => Op::Dup,
                    3 => Op::Swap,
                    4 => Op::Load,
                    5 => Op::Store,
                    6 => Op::Jmp(t),
                    7 => Op::Jz(t),
                    8 => Op::Call(t),
                    9 => Op::Ret,
                    10 => Op::ToR,
                    _ => Op::Nop,
                }
            })
            .collect();
        let text = disassemble(&prog);
        let back = assemble(&text).unwrap();
        prop_assert_eq!(prog, back);
    }

    #[test]
    fn interpreter_respects_stack_effect_metadata(
        seed in any::<u64>(),
        steps in 1usize..200,
    ) {
        // Run a random arithmetic program (no control flow, memory at
        // fixed aligned addresses) and check each step's depth delta
        // against the ISA metadata.
        let mut rng = DetRng::new(seed);
        let mut prog: Vec<Op> = Vec::new();
        // Seed enough literals that pops can't underflow if we track depth.
        let mut depth = 0i64;
        for _ in 0..steps {
            let candidates: Vec<Op> = vec![
                Op::Lit(rng.next_u64() as u32 & 0xFFFF),
                Op::Add,
                Op::Sub,
                Op::Mul,
                Op::Dup,
                Op::Drop,
                Op::Swap,
                Op::Over,
                Op::Nip,
                Op::Lit(64), // aligned address feeder
            ];
            let viable: Vec<Op> = candidates
                .into_iter()
                .filter(|op| depth >= op.pops() as i64)
                .collect();
            let op = *rng.choose(&viable);
            depth += op.pushes() as i64 - op.pops() as i64;
            prog.push(op);
        }
        prog.push(Op::Halt);
        let mut m = StackMachine::new(prog.clone());
        let mut mem = SparseMemory::new();
        for op in &prog {
            if matches!(op, Op::Halt) {
                break;
            }
            let before = m.expr.len() as i64;
            m.step(&mut mem).unwrap();
            let after = m.expr.len() as i64;
            prop_assert_eq!(
                after - before,
                op.pushes() as i64 - op.pops() as i64,
                "{} violated its metadata", op
            );
        }
    }

    #[test]
    fn spills_round_trip_through_memory(
        values in prop::collection::vec(any::<u32>(), 20..200),
    ) {
        // Force heavy spilling with a tiny cache, then verify memory
        // contents: exactly the spilled prefix, in order.
        let mut mem = SparseMemory::new();
        let mut c = StackCache::new(2, 0x0);
        for &v in &values {
            c.push(v, &mut mem);
        }
        let spilled = c.depth() as usize - c.resident_len();
        for i in 0..spilled {
            prop_assert_eq!(mem.load(4 * i as u32), values[i], "spill slot {}", i);
        }
    }
}
