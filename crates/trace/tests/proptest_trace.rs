//! Property-based trace tests: codec round trips on arbitrary
//! workloads and generator structural invariants under random configs.

use em2_model::{Addr, CoreId, ThreadId};
use em2_trace::gen::ocean::OceanConfig;
use em2_trace::gen::synth::SynthConfig;
use em2_trace::{codec, ThreadTrace, Workload};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn codec_round_trips_arbitrary_workloads(
        spec in prop::collection::vec(
            prop::collection::vec((any::<u32>(), any::<bool>(), 0u32..100, any::<bool>()), 0..50),
            1..5,
        )
    ) {
        let threads: Vec<ThreadTrace> = spec
            .into_iter()
            .enumerate()
            .map(|(i, recs)| {
                let mut t = ThreadTrace::new(ThreadId(i as u32), CoreId((i * 3 % 7) as u16));
                for (addr, write, gap, barrier) in recs {
                    if barrier {
                        t.barrier();
                    }
                    if write {
                        t.write(gap, Addr(addr as u64));
                    } else {
                        t.read(gap, Addr(addr as u64));
                    }
                }
                t
            })
            .collect();
        let w = Workload::new("prop-codec", threads);
        let text = codec::format(&w);
        let back = codec::parse(&text).unwrap();
        prop_assert_eq!(w, back);
    }

    #[test]
    fn ocean_invariants_over_configs(
        tside in 1usize..4,
        mult in 1usize..4,
        iterations in 1usize..3,
        levels in 1usize..4,
    ) {
        let threads = tside * tside;
        let interior = tside * mult * 8; // divisible by tside, ≥ 8
        let cfg = OceanConfig {
            interior,
            threads,
            cores: threads,
            iterations,
            levels,
            ..OceanConfig::small()
        };
        let w = cfg.generate();
        prop_assert_eq!(w.num_threads(), threads);
        // Barrier alignment across threads.
        let counts: Vec<usize> = w.threads.iter().map(|t| t.barriers.len()).collect();
        prop_assert!(counts.windows(2).all(|c| c[0] == c[1]), "{:?}", counts);
        // Deterministic regeneration.
        prop_assert_eq!(w, cfg.generate());
    }

    #[test]
    fn synth_respects_requested_structure(
        threads in 2usize..6,
        accesses in 100usize..1000,
        single in 0.0f64..1.0,
    ) {
        let cfg = SynthConfig {
            threads,
            cores: threads,
            accesses_per_thread: accesses,
            single_fraction: single,
            ..SynthConfig::default()
        };
        let w = cfg.generate();
        prop_assert_eq!(w.num_threads(), threads);
        for t in &w.threads {
            // init phase (4096 writes) + requested accesses (runs may
            // overshoot by at most one run length).
            prop_assert!(t.len() >= 4096 + accesses);
            prop_assert!(t.len() < 4096 + accesses + cfg.max_run as usize);
        }
    }

    #[test]
    fn workload_stats_are_consistent(
        spec in prop::collection::vec((any::<u16>(), any::<bool>()), 0..200)
    ) {
        let mut t0 = ThreadTrace::new(ThreadId(0), CoreId(0));
        for &(addr, write) in &spec {
            if write {
                t0.write(0, Addr(addr as u64 * 4));
            } else {
                t0.read(0, Addr(addr as u64 * 4));
            }
        }
        let w = Workload::new("stats", vec![t0]);
        let s = w.stats(64);
        prop_assert_eq!(s.accesses as usize, spec.len());
        prop_assert_eq!(s.reads + s.writes, s.accesses);
        prop_assert_eq!(s.shared_lines, 0, "single thread cannot share");
        prop_assert_eq!(s.footprint_bytes, s.lines_touched * 64);
        if !spec.is_empty() {
            prop_assert!(s.min_addr <= s.max_addr);
        }
    }
}
