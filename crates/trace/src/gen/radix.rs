//! RADIX stand-in: parallel radix sort — histogram, prefix combine,
//! permutation scatter.
//!
//! SPLASH-2 RADIX sorts integer keys digit by digit: each thread builds
//! a local histogram of its keys (local), the histograms are combined
//! (one thread reads every other thread's histogram — runs of histogram
//! length at each peer core), and keys are scattered to their sorted
//! positions, which land in arbitrary threads' partitions (remote
//! singles). This is the "scatter-dominated" extreme among the
//! workloads.

use crate::addr::AddressSpace;
use crate::gen::native_core;
use crate::trace::{ThreadTrace, Workload};
use em2_model::DetRng;

/// Configuration for the RADIX stand-in generator.
#[derive(Clone, Debug, PartialEq)]
pub struct RadixConfig {
    /// Keys per thread.
    pub keys_per_thread: usize,
    /// Histogram buckets (radix).
    pub buckets: usize,
    /// Number of threads.
    pub threads: usize,
    /// Number of cores.
    pub cores: usize,
    /// Sort passes (digits).
    pub passes: usize,
    /// Element bytes.
    pub elem_bytes: u64,
    /// Non-memory gap.
    pub gap: u32,
    /// RNG seed for key values.
    pub seed: u64,
}

impl Default for RadixConfig {
    fn default() -> Self {
        RadixConfig {
            keys_per_thread: 4096,
            buckets: 64,
            threads: 64,
            cores: 64,
            passes: 2,
            elem_bytes: 8,
            gap: 2,
            seed: 0x52AD_1234,
        }
    }
}

impl RadixConfig {
    /// Small config for unit tests.
    pub fn small() -> Self {
        RadixConfig {
            keys_per_thread: 128,
            buckets: 8,
            threads: 4,
            cores: 4,
            passes: 1,
            elem_bytes: 8,
            gap: 2,
            seed: 42,
        }
    }

    /// Generate the workload.
    pub fn generate(&self) -> Workload {
        assert!(self.threads > 0 && self.keys_per_thread > 0 && self.buckets > 0);
        let mut space = AddressSpace::with_page_alignment();
        let keys = space.alloc_per_thread(
            "keys",
            self.threads,
            self.keys_per_thread as u64 * self.elem_bytes,
        );
        let dest = space.alloc_per_thread(
            "dest",
            self.threads,
            self.keys_per_thread as u64 * self.elem_bytes,
        );
        let histos =
            space.alloc_per_thread("histo", self.threads, self.buckets as u64 * self.elem_bytes);

        let mut traces: Vec<ThreadTrace> = (0..self.threads)
            .map(|t| ThreadTrace::new(t.into(), native_core(t, self.cores)))
            .collect();
        let mut rng = DetRng::new(self.seed);

        // Phase 0: first-touch own regions.
        for (t, tr) in traces.iter_mut().enumerate() {
            for i in 0..self.keys_per_thread as u64 {
                tr.write(self.gap, keys[t].elem(i, self.elem_bytes));
                tr.write(self.gap, dest[t].elem(i, self.elem_bytes));
            }
            for b in 0..self.buckets as u64 {
                tr.write(self.gap, histos[t].elem(b, self.elem_bytes));
            }
            tr.barrier();
        }

        for _pass in 0..self.passes {
            // Histogram: read own keys, bump own buckets (all local).
            for (t, tr) in traces.iter_mut().enumerate() {
                let mut trng = rng.fork(t as u64);
                for i in 0..self.keys_per_thread as u64 {
                    tr.read(self.gap, keys[t].elem(i, self.elem_bytes));
                    let b = trng.below(self.buckets as u64);
                    tr.read(self.gap, histos[t].elem(b, self.elem_bytes));
                    tr.write(self.gap, histos[t].elem(b, self.elem_bytes));
                }
                tr.barrier();
            }
            // Prefix combine: thread 0 reads every histogram — a run of
            // `buckets` at each peer's core — then writes its own.
            for peer in 0..self.threads {
                for b in 0..self.buckets as u64 {
                    traces[0].read(self.gap, histos[peer].elem(b, self.elem_bytes));
                }
            }
            for b in 0..self.buckets as u64 {
                traces[0].write(self.gap, histos[0].elem(b, self.elem_bytes));
            }
            for tr in traces.iter_mut() {
                tr.barrier();
            }
            // Scatter: read own key (local), write into the destination
            // partition the key hashes to (usually remote, singles).
            for t in 0..self.threads {
                let mut trng = rng.fork(0x5CA7 ^ t as u64);
                let tr = &mut traces[t];
                for i in 0..self.keys_per_thread as u64 {
                    tr.read(self.gap, keys[t].elem(i, self.elem_bytes));
                    let owner = trng.below(self.threads as u64) as usize;
                    let slot = trng.below(self.keys_per_thread as u64);
                    tr.write(self.gap, dest[owner].elem(slot, self.elem_bytes));
                }
                tr.barrier();
            }
            rng = rng.fork(0xBEEF);
        }

        Workload::new("radix", traces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_deterministically() {
        let a = RadixConfig::small().generate();
        let b = RadixConfig::small().generate();
        assert_eq!(a, b);
    }

    #[test]
    fn scatter_creates_sharing() {
        let w = RadixConfig::small().generate();
        let s = w.stats(64);
        assert!(s.sharing_fraction() > 0.2, "{s:?}");
    }

    #[test]
    fn barriers_aligned() {
        let w = RadixConfig::small().generate();
        let counts: Vec<usize> = w.threads.iter().map(|t| t.barriers.len()).collect();
        assert!(counts.windows(2).all(|c| c[0] == c[1]), "{counts:?}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = RadixConfig::small().generate();
        let b = RadixConfig {
            seed: 43,
            ..RadixConfig::small()
        }
        .generate();
        assert_ne!(a, b);
    }
}
