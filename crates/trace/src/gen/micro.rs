//! Microbenchmark generators: the small, analyzable patterns used by
//! the paper's flow experiments (E1/E3) and throughout the test suite.

use crate::addr::AddressSpace;
use crate::gen::native_core;
use crate::trace::{ThreadTrace, Workload};
use em2_model::DetRng;

/// Element size used by all microbenchmarks (one 64-bit word).
const ELEM: u64 = 8;

/// Every thread loops over a private array: no sharing, no migrations
/// expected under any sane placement.
pub fn private(threads: usize, cores: usize, accesses_per_thread: usize) -> Workload {
    let mut space = AddressSpace::with_page_alignment();
    let regions = space.alloc_per_thread("priv", threads, 512 * ELEM);
    let mut traces: Vec<ThreadTrace> = (0..threads)
        .map(|t| ThreadTrace::new(t.into(), native_core(t, cores)))
        .collect();
    for (t, tr) in traces.iter_mut().enumerate() {
        // init claims the region under first-touch
        for i in 0..512 {
            tr.write(1, regions[t].elem(i, ELEM));
        }
        tr.barrier();
        for i in 0..accesses_per_thread {
            let idx = (i % 512) as u64;
            if i % 4 == 3 {
                tr.write(1, regions[t].elem(idx, ELEM));
            } else {
                tr.read(1, regions[t].elem(idx, ELEM));
            }
        }
    }
    Workload::new("private", traces)
}

/// Uniform random accesses over a shared heap: the worst case for any
/// placement, the best case for remote access over migration.
pub fn uniform(
    threads: usize,
    cores: usize,
    accesses_per_thread: usize,
    shared_lines: usize,
    write_fraction: f64,
    seed: u64,
) -> Workload {
    let mut space = AddressSpace::with_page_alignment();
    let heap = space.alloc("heap", shared_lines as u64 * 64);
    let root = DetRng::new(seed);
    let mut traces: Vec<ThreadTrace> = (0..threads)
        .map(|t| ThreadTrace::new(t.into(), native_core(t, cores)))
        .collect();
    // Init: stripe first touches across threads so placement spreads.
    for line in 0..shared_lines {
        let t = line % threads;
        traces[t].write(1, heap.elem(line as u64 * 8, ELEM));
    }
    for tr in traces.iter_mut() {
        tr.barrier();
    }
    for (t, tr) in traces.iter_mut().enumerate() {
        let mut rng = root.fork(t as u64);
        for _ in 0..accesses_per_thread {
            let line = rng.below(shared_lines as u64);
            let addr = heap.elem(line * 8, ELEM);
            if rng.chance(write_fraction) {
                tr.write(1, addr);
            } else {
                tr.read(1, addr);
            }
        }
    }
    Workload::new("uniform", traces)
}

/// Pairs of threads ping-pong a shared word: thread `2i` first-touches
/// it, then both alternate read-modify-writes `rounds` times, touching
/// a private accumulator after each turn (as real lock handoff code
/// does). Under EM² the odd thread migrates to the cell's home for
/// every turn (run length 2: read + write) and migrates straight back
/// for its private access — the paper's "usually back to the core from
/// which the first migration originated" pattern.
pub fn pingpong(pairs: usize, cores: usize, rounds: usize) -> Workload {
    let threads = pairs * 2;
    let mut space = AddressSpace::with_page_alignment();
    let cells = space.alloc_per_thread("cell", pairs, 64);
    let privs = space.alloc_per_thread("acc", threads, 64);
    let mut traces: Vec<ThreadTrace> = (0..threads)
        .map(|t| ThreadTrace::new(t.into(), native_core(t, cores)))
        .collect();
    for p in 0..pairs {
        traces[2 * p].write(1, cells[p].elem(0, ELEM));
    }
    for (t, tr) in traces.iter_mut().enumerate() {
        tr.write(1, privs[t].elem(0, ELEM));
        tr.barrier();
    }
    for round in 0..rounds {
        for p in 0..pairs {
            let who = if round % 2 == 0 { 2 * p } else { 2 * p + 1 };
            let tr = &mut traces[who];
            tr.read(2, cells[p].elem(0, ELEM));
            tr.write(2, cells[p].elem(0, ELEM));
            tr.write(2, privs[who].elem(0, ELEM));
        }
        // Round boundaries are synchronized (models lock handoff).
        for tr in traces.iter_mut() {
            tr.barrier();
        }
    }
    Workload::new("pingpong", traces)
}

/// Ring producer-consumer: thread `t` fills its buffer (local), thread
/// `t+1 mod n` drains it (a remote run of `buf_elems` at `t`'s core).
pub fn producer_consumer(
    threads: usize,
    cores: usize,
    buf_elems: usize,
    rounds: usize,
) -> Workload {
    assert!(threads >= 2);
    let mut space = AddressSpace::with_page_alignment();
    let bufs = space.alloc_per_thread("buf", threads, buf_elems as u64 * ELEM);
    let mut traces: Vec<ThreadTrace> = (0..threads)
        .map(|t| ThreadTrace::new(t.into(), native_core(t, cores)))
        .collect();
    for (t, tr) in traces.iter_mut().enumerate() {
        for i in 0..buf_elems as u64 {
            tr.write(1, bufs[t].elem(i, ELEM));
        }
        tr.barrier();
    }
    for _ in 0..rounds {
        // produce locally
        for (t, tr) in traces.iter_mut().enumerate() {
            for i in 0..buf_elems as u64 {
                tr.write(1, bufs[t].elem(i, ELEM));
            }
            tr.barrier();
        }
        // consume the left neighbour's buffer (remote run)
        for t in 0..threads {
            let src = (t + threads - 1) % threads;
            let tr = &mut traces[t];
            for i in 0..buf_elems as u64 {
                tr.read(1, bufs[src].elem(i, ELEM));
            }
            tr.barrier();
        }
    }
    Workload::new("producer_consumer", traces)
}

/// Hotspot: a fraction of every thread's accesses hit a region
/// first-touched by thread 0; the rest are private. Stresses guest
/// context contention at one core.
pub fn hotspot(
    threads: usize,
    cores: usize,
    accesses_per_thread: usize,
    hot_fraction: f64,
    seed: u64,
) -> Workload {
    let mut space = AddressSpace::with_page_alignment();
    let hot = space.alloc("hot", 256 * ELEM);
    let privs = space.alloc_per_thread("priv", threads, 256 * ELEM);
    let root = DetRng::new(seed);
    let mut traces: Vec<ThreadTrace> = (0..threads)
        .map(|t| ThreadTrace::new(t.into(), native_core(t, cores)))
        .collect();
    for i in 0..256 {
        traces[0].write(1, hot.elem(i, ELEM));
    }
    for (t, tr) in traces.iter_mut().enumerate() {
        for i in 0..256 {
            tr.write(1, privs[t].elem(i, ELEM));
        }
        tr.barrier();
    }
    for (t, tr) in traces.iter_mut().enumerate() {
        let mut rng = root.fork(t as u64);
        for _ in 0..accesses_per_thread {
            if rng.chance(hot_fraction) {
                let i = rng.below(256);
                if rng.chance(0.25) {
                    tr.write(1, hot.elem(i, ELEM));
                } else {
                    tr.read(1, hot.elem(i, ELEM));
                }
            } else {
                let i = rng.below(256);
                tr.read(1, privs[t].elem(i, ELEM));
            }
        }
    }
    Workload::new("hotspot", traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_has_no_sharing() {
        let w = private(4, 4, 100);
        let s = w.stats(64);
        assert_eq!(s.shared_lines, 0, "{s:?}");
        assert_eq!(w.total_accesses(), 4 * (512 + 100));
    }

    #[test]
    fn uniform_shares_heavily() {
        let w = uniform(4, 4, 200, 64, 0.3, 1);
        let s = w.stats(64);
        assert!(s.sharing_fraction() > 0.5, "{s:?}");
    }

    #[test]
    fn uniform_deterministic() {
        assert_eq!(uniform(2, 2, 50, 16, 0.5, 9), uniform(2, 2, 50, 16, 0.5, 9));
        assert_ne!(
            uniform(2, 2, 50, 16, 0.5, 9),
            uniform(2, 2, 50, 16, 0.5, 10)
        );
    }

    #[test]
    fn pingpong_structure() {
        let w = pingpong(2, 4, 10);
        assert_eq!(w.num_threads(), 4);
        // Per pair: 1 cell init + 2 private inits + 10 rounds × 3 accesses.
        let total: usize = w.total_accesses();
        assert_eq!(total, 2 * (3 + 10 * 3));
    }

    #[test]
    fn producer_consumer_runs() {
        let w = producer_consumer(3, 3, 8, 2);
        assert_eq!(w.num_threads(), 3);
        let s = w.stats(64);
        assert!(s.shared_lines > 0);
    }

    #[test]
    fn hotspot_touches_hot_region() {
        let w = hotspot(4, 4, 100, 0.5, 3);
        let s = w.stats(64);
        assert!(s.sharing_fraction() > 0.05, "{s:?}");
    }
}
