//! FFT stand-in: local butterfly passes + all-to-all block transpose.
//!
//! SPLASH-2 FFT is a six-step 1-D FFT: the data is viewed as a
//! `side × side` matrix of complex points, threads own contiguous row
//! bands, butterfly passes are entirely local, and the transpose steps
//! are all-to-all: every thread reads a sub-block from every other
//! thread's band (into a private buffer) and writes it locally. The
//! sub-block copies produce medium-length runs at each peer's core —
//! the communication signature EM² sees.

use crate::addr::AddressSpace;
use crate::gen::native_core;
use crate::trace::{ThreadTrace, Workload};

/// Configuration for the FFT stand-in generator.
#[derive(Clone, Debug, PartialEq)]
pub struct FftConfig {
    /// Matrix side; total points = side². Must be divisible by `threads`.
    pub side: usize,
    /// Number of threads (each owns `side/threads` rows).
    pub threads: usize,
    /// Number of cores.
    pub cores: usize,
    /// Butterfly+transpose super-steps.
    pub iterations: usize,
    /// Transpose copy sub-block side (runs of `block²` at peer cores).
    pub block: usize,
    /// Element size in bytes (complex double = 16).
    pub elem_bytes: u64,
    /// Non-memory gap between accesses.
    pub gap: u32,
}

impl Default for FftConfig {
    fn default() -> Self {
        FftConfig {
            side: 256,
            threads: 64,
            cores: 64,
            iterations: 2,
            block: 4,
            elem_bytes: 16,
            gap: 2,
        }
    }
}

impl FftConfig {
    /// Small config for unit tests.
    pub fn small() -> Self {
        FftConfig {
            side: 16,
            threads: 4,
            cores: 4,
            iterations: 1,
            block: 2,
            elem_bytes: 16,
            gap: 2,
        }
    }

    fn validate(&self) {
        assert!(self.threads > 0 && self.side > 0);
        assert_eq!(
            self.side % self.threads,
            0,
            "fft: side must divide by threads"
        );
        let rows = self.side / self.threads;
        assert!(self.block > 0 && self.block <= rows && self.block <= self.side);
        assert_eq!(rows % self.block, 0, "fft: band must divide into blocks");
        assert_eq!(
            self.side % self.block,
            0,
            "fft: side must divide into blocks"
        );
    }

    /// Generate the workload.
    pub fn generate(&self) -> Workload {
        self.validate();
        let rows_per_thread = self.side / self.threads;
        let mut space = AddressSpace::with_page_alignment();
        let src = space.alloc2d(
            "fft-src",
            self.side as u64,
            self.side as u64,
            self.elem_bytes,
        );
        let dst = space.alloc2d(
            "fft-dst",
            self.side as u64,
            self.side as u64,
            self.elem_bytes,
        );
        let cols = self.side as u64;

        let mut traces: Vec<ThreadTrace> = (0..self.threads)
            .map(|t| ThreadTrace::new(t.into(), native_core(t, self.cores)))
            .collect();

        // Phase 0: every thread first-touches its own row band in both
        // arrays (row-banded placement under first-touch).
        for (t, tr) in traces.iter_mut().enumerate() {
            let r0 = (t * rows_per_thread) as u64;
            for r in r0..r0 + rows_per_thread as u64 {
                for c in 0..cols {
                    tr.write(self.gap, src.at2d(r, c, cols, self.elem_bytes));
                    tr.write(self.gap, dst.at2d(r, c, cols, self.elem_bytes));
                }
            }
            tr.barrier();
        }

        for _ in 0..self.iterations {
            // Butterfly pass: local read-modify-write of own band.
            for (t, tr) in traces.iter_mut().enumerate() {
                let r0 = (t * rows_per_thread) as u64;
                for r in r0..r0 + rows_per_thread as u64 {
                    for c in 0..cols {
                        tr.read(self.gap, src.at2d(r, c, cols, self.elem_bytes));
                        tr.write(self.gap, src.at2d(r, c, cols, self.elem_bytes));
                    }
                }
                tr.barrier();
            }
            // Transpose: for every peer band, copy block × block
            // sub-blocks: block² consecutive remote reads (a run at the
            // peer's core), then block² local writes.
            for t in 0..self.threads {
                let tr = &mut traces[t];
                let my_r0 = t * rows_per_thread;
                for peer in 0..self.threads {
                    let peer_r0 = peer * rows_per_thread;
                    for br in (0..rows_per_thread).step_by(self.block) {
                        for bc in (0..rows_per_thread).step_by(self.block) {
                            // Read block at (peer_r0+br.., my_r0+bc..) —
                            // transposed source lives in peer's band.
                            for r in 0..self.block {
                                for c in 0..self.block {
                                    let gr = (peer_r0 + br + r) as u64;
                                    let gc = (my_r0 + bc + c) as u64;
                                    tr.read(self.gap, src.at2d(gr, gc, cols, self.elem_bytes));
                                }
                            }
                            for r in 0..self.block {
                                for c in 0..self.block {
                                    let gr = (my_r0 + bc + c) as u64;
                                    let gc = (peer_r0 + br + r) as u64;
                                    tr.write(self.gap, dst.at2d(gr, gc, cols, self.elem_bytes));
                                }
                            }
                        }
                    }
                }
                tr.barrier();
            }
        }

        Workload::new("fft", traces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_and_is_deterministic() {
        let a = FftConfig::small().generate();
        let b = FftConfig::small().generate();
        assert_eq!(a, b);
        assert_eq!(a.num_threads(), 4);
        assert!(a.total_accesses() > 500);
    }

    #[test]
    fn barriers_aligned() {
        let w = FftConfig::small().generate();
        let counts: Vec<usize> = w.threads.iter().map(|t| t.barriers.len()).collect();
        assert!(counts.windows(2).all(|c| c[0] == c[1]), "{counts:?}");
    }

    #[test]
    fn all_to_all_sharing() {
        let w = FftConfig::small().generate();
        let s = w.stats(64);
        // Transpose touches every band from every thread: 3 of every 4
        // src lines are read by a non-owner in the 4-thread config.
        assert!(s.sharing_fraction() > 0.3, "{s:?}");
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn rejects_bad_side() {
        FftConfig {
            side: 10,
            threads: 4,
            ..FftConfig::small()
        }
        .generate();
    }
}
