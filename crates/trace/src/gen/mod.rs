//! Synthetic workload generators.
//!
//! Each generator reproduces the *sharing structure* of a SPLASH-2
//! kernel or a classic microbenchmark (see DESIGN.md §3 for why this
//! substitution preserves the paper's measurements). All generators
//! are deterministic given their config (including its seed).
//!
//! | module | stand-in for | communication pattern |
//! |--------|--------------|----------------------|
//! | [`ocean`] | SPLASH-2 OCEAN | block-partitioned red-black stencil + boundary exchange (Figure 2) |
//! | [`fft`] | SPLASH-2 FFT | local butterflies + all-to-all block transpose |
//! | [`lu`] | SPLASH-2 LU | 2-D-cyclic blocked LU, diagonal-block broadcast |
//! | [`radix`] | SPLASH-2 RADIX | histogram + permutation scatter |
//! | [`micro`] | – | private, uniform, ping-pong, producer/consumer, hotspot |
//! | [`synth`] | – | parametric run-length mixtures for the §3 DP study |

pub mod fft;
pub mod lu;
pub mod micro;
pub mod ocean;
pub mod radix;
pub mod synth;

use em2_model::CoreId;

/// Map thread index to its native core for a machine of `cores` cores:
/// threads are distributed round-robin (the paper runs 64 threads on 64
/// cores, i.e. the identity mapping).
#[inline]
pub fn native_core(thread: usize, cores: usize) -> CoreId {
    CoreId::from(thread % cores)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_core_round_robin() {
        assert_eq!(native_core(0, 4), CoreId(0));
        assert_eq!(native_core(3, 4), CoreId(3));
        assert_eq!(native_core(4, 4), CoreId(0));
        assert_eq!(native_core(9, 4), CoreId(1));
    }
}
