//! Parametric synthetic traces for the §3 dynamic-program experiments.
//!
//! The paper's DP consumes a single thread's memory trace and the
//! address→core placement. To sweep trace length, core count, and
//! run-length structure independently (experiments E4/E5), this
//! generator emits traces as an alternation of *local runs* (accesses
//! homed at the native core) and *remote runs* (at some other core),
//! with the remote run-length distribution shaped like Figure 2: a
//! point mass at 1 plus a geometric tail.

use crate::addr::AddressSpace;
use crate::gen::native_core;
use crate::trace::{ThreadTrace, Workload};
use em2_model::DetRng;

/// Configuration for the synthetic run-length workload.
#[derive(Clone, Debug, PartialEq)]
pub struct SynthConfig {
    /// Number of threads.
    pub threads: usize,
    /// Number of cores.
    pub cores: usize,
    /// Accesses per thread (approximate; runs are never truncated).
    pub accesses_per_thread: usize,
    /// Mean length of local runs.
    pub local_run_mean: f64,
    /// Probability that a remote run has length exactly 1
    /// (Figure 2 measures ≈ one half of accesses in such runs).
    pub single_fraction: f64,
    /// Mean *additional* length of longer remote runs (geometric).
    pub long_run_mean: f64,
    /// Hard cap on any run length.
    pub max_run: u64,
    /// Fraction of accesses that are writes.
    pub write_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            threads: 64,
            cores: 64,
            accesses_per_thread: 10_000,
            local_run_mean: 4.0,
            single_fraction: 0.55,
            long_run_mean: 8.0,
            max_run: 64,
            write_fraction: 0.3,
            seed: 0x5EED,
        }
    }
}

impl SynthConfig {
    /// Small config for unit tests.
    pub fn small() -> Self {
        SynthConfig {
            threads: 4,
            cores: 4,
            accesses_per_thread: 500,
            ..SynthConfig::default()
        }
    }

    /// Generate the workload. Each thread's accesses within a run walk
    /// consecutive words of the target thread's region, so placement
    /// (first-touch at any granularity, or striped by region) maps each
    /// run to a single home core.
    pub fn generate(&self) -> Workload {
        assert!(self.threads >= 2, "synth needs a remote core to talk to");
        let region_words: u64 = 4096;
        let mut space = AddressSpace::with_page_alignment();
        let regions = space.alloc_per_thread("synth", self.threads, region_words * 8);
        let root = DetRng::new(self.seed);

        let mut traces: Vec<ThreadTrace> = (0..self.threads)
            .map(|t| ThreadTrace::new(t.into(), native_core(t, self.cores)))
            .collect();

        // Init: claim own region under first-touch.
        for (t, tr) in traces.iter_mut().enumerate() {
            for w in 0..region_words {
                tr.write(1, regions[t].elem(w, 8));
            }
            tr.barrier();
        }

        for (t, tr) in traces.iter_mut().enumerate() {
            let mut rng = root.fork(t as u64);
            let mut cursors = vec![0u64; self.threads];
            let mut emitted = 0usize;
            let mut remote_next = false;
            while emitted < self.accesses_per_thread {
                let (target, len) = if remote_next {
                    let mut peer = rng.below(self.threads as u64 - 1) as usize;
                    if peer >= t {
                        peer += 1;
                    }
                    let len = if rng.chance(self.single_fraction) {
                        1
                    } else {
                        let p = 1.0 - 1.0 / self.long_run_mean.max(1.0);
                        (2 + rng.geometric(p, self.max_run - 2)).min(self.max_run)
                    };
                    (peer, len)
                } else {
                    let p = 1.0 - 1.0 / self.local_run_mean.max(1.0);
                    (
                        t,
                        (1 + rng.geometric(p, self.max_run - 1)).min(self.max_run),
                    )
                };
                for _ in 0..len {
                    let w = cursors[target] % region_words;
                    cursors[target] += 1;
                    let addr = regions[target].elem(w, 8);
                    if rng.chance(self.write_fraction) {
                        tr.write(1, addr);
                    } else {
                        tr.read(1, addr);
                    }
                    emitted += 1;
                }
                remote_next = !remote_next;
            }
        }

        Workload::new("synth", traces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let a = SynthConfig::small().generate();
        let b = SynthConfig::small().generate();
        assert_eq!(a, b);
        for t in &a.threads {
            // init (4096) + ~500 requested
            assert!(t.len() >= 4096 + 500, "trace too short: {}", t.len());
        }
    }

    #[test]
    fn touches_remote_regions() {
        // The init phase first-touches 4096 words per thread, so the
        // *fraction* of shared lines is small; what matters is that the
        // remote runs exist at all.
        let w = SynthConfig::small().generate();
        let s = w.stats(64);
        assert!(s.shared_lines > 10, "{s:?}");
    }

    #[test]
    fn respects_max_run_cap() {
        let cfg = SynthConfig {
            max_run: 4,
            ..SynthConfig::small()
        };
        let w = cfg.generate();
        // Verify by scanning: no more than 4 consecutive accesses to a
        // non-own region per thread.
        for t in &w.threads {
            let mut run = 0u64;
            let mut prev_region: Option<usize> = None;
            for r in t.records.iter().skip(4096) {
                let region = ((r.addr.0 - 0x1_0000) / (4096 * 8)) as usize;
                if Some(region) == prev_region {
                    run += 1;
                } else {
                    run = 1;
                    prev_region = Some(region);
                }
                assert!(run <= 2 * cfg.max_run, "run too long");
            }
        }
    }
}
