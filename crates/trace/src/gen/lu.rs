//! LU stand-in: blocked dense LU factorization with 2-D-cyclic block
//! ownership.
//!
//! SPLASH-2 LU factorizes an `n × n` matrix in `B × B` blocks assigned
//! to a `pr × pc` thread grid cyclically. At step `k` the owner of the
//! diagonal block factorizes it locally; the owners of the blocks in
//! row/column `k` then read the whole diagonal block (a long run at its
//! owner's core — the "broadcast" the paper's run-length analysis
//! sees), and interior blocks read their row/column pivots. Ownership
//! is established by a first-touch init phase.

use crate::addr::AddressSpace;
use crate::gen::native_core;
use crate::trace::{ThreadTrace, Workload};

/// Configuration for the LU stand-in generator.
#[derive(Clone, Debug, PartialEq)]
pub struct LuConfig {
    /// Number of blocks per matrix side (matrix is `nb·b × nb·b`).
    pub nb: usize,
    /// Block side in elements.
    pub b: usize,
    /// Thread-grid rows; `pr * pc` = thread count.
    pub pr: usize,
    /// Thread-grid columns.
    pub pc: usize,
    /// Number of cores.
    pub cores: usize,
    /// Element bytes (doubles).
    pub elem_bytes: u64,
    /// Non-memory gap.
    pub gap: u32,
}

impl Default for LuConfig {
    fn default() -> Self {
        LuConfig {
            nb: 16,
            b: 8,
            pr: 8,
            pc: 8,
            cores: 64,
            elem_bytes: 8,
            gap: 2,
        }
    }
}

impl LuConfig {
    /// Small config for unit tests (4 threads).
    pub fn small() -> Self {
        LuConfig {
            nb: 4,
            b: 4,
            pr: 2,
            pc: 2,
            cores: 4,
            elem_bytes: 8,
            gap: 2,
        }
    }

    /// Owner thread of block `(i, j)` under the 2-D cyclic map.
    pub fn owner(&self, i: usize, j: usize) -> usize {
        (i % self.pr) * self.pc + (j % self.pc)
    }

    fn threads(&self) -> usize {
        self.pr * self.pc
    }

    /// Generate the workload.
    pub fn generate(&self) -> Workload {
        assert!(self.nb >= 2 && self.b >= 1);
        let threads = self.threads();
        let n = (self.nb * self.b) as u64;
        let mut space = AddressSpace::with_page_alignment();
        let mat = space.alloc2d("lu-matrix", n, n, self.elem_bytes);

        let mut traces: Vec<ThreadTrace> = (0..threads)
            .map(|t| ThreadTrace::new(t.into(), native_core(t, self.cores)))
            .collect();

        let block_elems = |bi: usize, bj: usize| {
            let r0 = (bi * self.b) as u64;
            let c0 = (bj * self.b) as u64;
            (0..self.b as u64).flat_map(move |r| (0..self.b as u64).map(move |c| (r0 + r, c0 + c)))
        };

        // Phase 0: each owner first-touches its blocks.
        for bi in 0..self.nb {
            for bj in 0..self.nb {
                let t = self.owner(bi, bj);
                for (r, c) in block_elems(bi, bj) {
                    traces[t].write(self.gap, mat.at2d(r, c, n, self.elem_bytes));
                }
            }
        }
        for tr in traces.iter_mut() {
            tr.barrier();
        }

        // Elimination steps.
        for k in 0..self.nb {
            // 1) Diagonal factorization: local RMW by owner(k,k).
            let diag_owner = self.owner(k, k);
            for (r, c) in block_elems(k, k) {
                traces[diag_owner].read(self.gap, mat.at2d(r, c, n, self.elem_bytes));
                traces[diag_owner].write(self.gap, mat.at2d(r, c, n, self.elem_bytes));
            }
            for tr in traces.iter_mut() {
                tr.barrier();
            }

            // 2) Panel update: owners of (i,k) and (k,j) read the whole
            //    diagonal block (a b² run at diag_owner's core), then
            //    RMW their own block locally.
            for i in k + 1..self.nb {
                for (who, bi, bj) in [(self.owner(i, k), i, k), (self.owner(k, i), k, i)] {
                    let tr = &mut traces[who];
                    for (r, c) in block_elems(k, k) {
                        tr.read(self.gap, mat.at2d(r, c, n, self.elem_bytes));
                    }
                    for (r, c) in block_elems(bi, bj) {
                        tr.read(self.gap, mat.at2d(r, c, n, self.elem_bytes));
                        tr.write(self.gap, mat.at2d(r, c, n, self.elem_bytes));
                    }
                }
            }
            for tr in traces.iter_mut() {
                tr.barrier();
            }

            // 3) Trailing update: owner of (i,j) reads pivot blocks
            //    (i,k) and (k,j) — two b² runs at their owners — and
            //    updates (i,j) locally.
            for i in k + 1..self.nb {
                for j in k + 1..self.nb {
                    let t = self.owner(i, j);
                    let tr = &mut traces[t];
                    for (r, c) in block_elems(i, k) {
                        tr.read(self.gap, mat.at2d(r, c, n, self.elem_bytes));
                    }
                    for (r, c) in block_elems(k, j) {
                        tr.read(self.gap, mat.at2d(r, c, n, self.elem_bytes));
                    }
                    for (r, c) in block_elems(i, j) {
                        tr.read(self.gap, mat.at2d(r, c, n, self.elem_bytes));
                        tr.write(self.gap, mat.at2d(r, c, n, self.elem_bytes));
                    }
                }
            }
            for tr in traces.iter_mut() {
                tr.barrier();
            }
        }

        Workload::new("lu", traces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_deterministically() {
        let a = LuConfig::small().generate();
        let b = LuConfig::small().generate();
        assert_eq!(a, b);
        assert_eq!(a.num_threads(), 4);
    }

    #[test]
    fn cyclic_ownership() {
        let c = LuConfig::small();
        assert_eq!(c.owner(0, 0), 0);
        assert_eq!(c.owner(0, 1), 1);
        assert_eq!(c.owner(1, 0), 2);
        assert_eq!(c.owner(2, 2), 0); // wraps
    }

    #[test]
    fn barriers_aligned() {
        let w = LuConfig::small().generate();
        let counts: Vec<usize> = w.threads.iter().map(|t| t.barriers.len()).collect();
        assert!(counts.windows(2).all(|c| c[0] == c[1]), "{counts:?}");
    }

    #[test]
    fn later_steps_share_pivots() {
        let w = LuConfig::small().generate();
        let s = w.stats(64);
        assert!(s.sharing_fraction() > 0.3, "{s:?}");
        assert!(s.reads > s.writes);
    }
}
