//! OCEAN stand-in: multigrid red-black stencil over a block-partitioned
//! 2-D grid.
//!
//! SPLASH-2 OCEAN simulates eddy currents with a red-black Gauss-Seidel
//! multigrid solver. Crucially for placement, OCEAN allocates each
//! processor's sub-grid as its *own padded array* (the famous 4-D array
//! optimization), so under first-touch placement a thread's partition
//! is wholly local and all communication is boundary traffic. The
//! memory behaviour that matters for EM² — what Figure 2 of the paper
//! measures — then comes from four structural sources, all reproduced
//! here:
//!
//! 1. **Interior stencil sweeps.** 5-point-stencil updates of points on
//!    the block's rim read one neighbour-owned point amid several
//!    locally-owned ones, producing *run-length-1* accesses at the
//!    neighbour's core (about half of all non-native accesses in the
//!    paper's measurement — they "migrate after one memory reference").
//! 2. **Ghost-row exchange.** Per relaxation pass, threads copy their
//!    north/south neighbour's boundary row into a local ghost row in
//!    chunks (software-pipelined copy), producing *medium runs* (the
//!    chunk size) at the neighbour's core.
//! 3. **Boundary-column reductions.** Threads reduce their west/east
//!    neighbour's boundary column while accumulating in registers,
//!    producing *long runs* (the block side) at the neighbour's core.
//!    At coarser multigrid levels the blocks shrink, spreading run
//!    lengths over `bs, bs/2, bs/4, …`.
//! 4. **Serial border & global reductions.** Thread 0 owns the global
//!    border and the convergence flag, producing one-off hotspot
//!    accesses homed at core 0.

use crate::addr::{AddressSpace, Region};
use crate::gen::native_core;
use crate::trace::{ThreadTrace, Workload};

/// Configuration for the OCEAN stand-in generator.
#[derive(Clone, Debug, PartialEq)]
pub struct OceanConfig {
    /// Interior grid dimension `n`; must be divisible by `sqrt(threads)`.
    pub interior: usize,
    /// Number of threads; must be a perfect square (block decomposition).
    pub threads: usize,
    /// Number of cores the threads are spread over (natives round-robin).
    pub cores: usize,
    /// Number of solver iterations (V-cycles).
    pub iterations: usize,
    /// Grid element size in bytes (OCEAN uses doubles).
    pub elem_bytes: u64,
    /// Multigrid levels (1 = finest only). Levels whose blocks would
    /// drop below 4×4 points are skipped automatically.
    pub levels: usize,
    /// Ghost-row copy chunk size in elements (the medium run length).
    pub ghost_chunk: usize,
    /// Non-memory instruction gap between stencil accesses.
    pub gap: u32,
}

impl Default for OceanConfig {
    /// The paper's Figure-2 scale: 64 threads on 64 cores, 256² interior
    /// grid (32×32 blocks), 4 V-cycles, 3 multigrid levels.
    fn default() -> Self {
        OceanConfig {
            interior: 256,
            threads: 64,
            cores: 64,
            iterations: 4,
            elem_bytes: 8,
            levels: 3,
            ghost_chunk: 8,
            gap: 2,
        }
    }
}

/// Per-level geometry and regions.
struct Level {
    /// Block side in points.
    bs: usize,
    /// Row stride of a block region, in elements (padded for alignment).
    stride: u64,
    /// One padded region per thread: `bs + 2` rows (bs data rows, then
    /// a north-ghost row and a south-ghost row).
    blocks: Vec<Region>,
    /// Global border, owned by thread 0: `4 × (interior + 2)` elements
    /// (top row, bottom row, west column, east column).
    border: Region,
    /// Interior width at this level.
    n: usize,
}

impl OceanConfig {
    /// A small configuration for unit tests: 4 threads, 16² grid.
    pub fn small() -> Self {
        OceanConfig {
            interior: 16,
            threads: 4,
            cores: 4,
            iterations: 2,
            elem_bytes: 8,
            levels: 2,
            ghost_chunk: 4,
            gap: 2,
        }
    }

    fn tside(&self) -> usize {
        (self.threads as f64).sqrt() as usize
    }

    fn validate(&self) {
        let tside = self.tside();
        assert_eq!(
            tside * tside,
            self.threads,
            "ocean: thread count must be a perfect square"
        );
        assert!(self.interior >= 4, "ocean: grid too small");
        assert_eq!(
            self.interior % tside,
            0,
            "ocean: interior must divide evenly into thread blocks"
        );
        assert!(self.iterations > 0 && self.levels > 0 && self.ghost_chunk > 0);
    }

    /// Number of multigrid levels that actually materialize.
    pub fn effective_levels(&self) -> usize {
        let tside = self.tside();
        (0..self.levels)
            .take_while(|&l| {
                (self.interior >> l) / tside >= 4 && (self.interior >> l).is_multiple_of(tside)
            })
            .count()
    }

    fn build_levels(&self, space: &mut AddressSpace) -> Vec<Level> {
        let tside = self.tside();
        (0..self.effective_levels())
            .map(|l| {
                let n = self.interior >> l;
                let bs = n / tside;
                // Pad each row to a 64-byte multiple so block rows never
                // share cache lines across threads (OCEAN's padding).
                let stride = ((bs as u64 * self.elem_bytes).next_multiple_of(64)) / self.elem_bytes;
                let blocks = (0..self.threads)
                    .map(|t| {
                        space.alloc2d(
                            format!("block[{l}][{t}]"),
                            (bs + 2) as u64,
                            stride,
                            self.elem_bytes,
                        )
                    })
                    .collect();
                let border =
                    space.alloc(format!("border[{l}]"), 4 * (n as u64 + 2) * self.elem_bytes);
                Level {
                    bs,
                    stride,
                    blocks,
                    border,
                    n,
                }
            })
            .collect()
    }

    /// Generate the workload.
    pub fn generate(&self) -> Workload {
        self.validate();
        let tside = self.tside();
        let eb = self.elem_bytes;
        let mut space = AddressSpace::with_page_alignment();
        let levels = self.build_levels(&mut space);
        let partials = space.alloc("partials", self.threads as u64 * eb);
        let flag = space.alloc("flag", eb);

        let mut traces: Vec<ThreadTrace> = (0..self.threads)
            .map(|t| ThreadTrace::new(t.into(), native_core(t, self.cores)))
            .collect();

        // Point (r, c) of thread t's block at a level.
        let pt = |lv: &Level, t: usize, r: usize, c: usize| {
            lv.blocks[t].at2d(r as u64, c as u64, lv.stride, eb)
        };
        // Border accessors: side 0 = top, 1 = bottom, 2 = west, 3 = east.
        let border_at =
            |lv: &Level, side: usize, i: usize| lv.border.elem((side * (lv.n + 2) + i) as u64, eb);
        let tid = |bx: usize, by: usize| by * tside + bx;

        // ---- Phase 0: initialization (determines first-touch homes) ----
        for lv in &levels {
            let t0 = &mut traces[0];
            for side in 0..4 {
                for i in 0..lv.n + 2 {
                    t0.write(self.gap, border_at(lv, side, i));
                }
            }
        }
        traces[0].write(self.gap, flag.elem(0, eb));
        for t in 0..self.threads {
            for lv in &levels {
                for r in 0..lv.bs + 2 {
                    for c in 0..lv.bs {
                        traces[t].write(self.gap, pt(lv, t, r, c));
                    }
                }
            }
            traces[t].write(self.gap, partials.elem(t as u64, eb));
        }
        for t in &mut traces {
            t.barrier();
        }

        // ---- Iterations: V-cycle over levels ----
        for _iter in 0..self.iterations {
            for lv in &levels {
                let bs = lv.bs;
                // (a) Ghost-row exchange: chunked copy of the north and
                // south neighbours' boundary rows into local ghosts.
                for by in 0..tside {
                    for bx in 0..tside {
                        let t = tid(bx, by);
                        let tr = &mut traces[t];
                        for c0 in (0..bs).step_by(self.ghost_chunk) {
                            let hi = (c0 + self.ghost_chunk).min(bs);
                            for c in c0..hi {
                                let src = if by > 0 {
                                    pt(lv, tid(bx, by - 1), bs - 1, c)
                                } else {
                                    border_at(lv, 0, bx * bs + c + 1)
                                };
                                tr.read(self.gap, src);
                            }
                            for c in c0..hi {
                                tr.write(self.gap, pt(lv, t, bs, c)); // north ghost row
                            }
                        }
                        for c0 in (0..bs).step_by(self.ghost_chunk) {
                            let hi = (c0 + self.ghost_chunk).min(bs);
                            for c in c0..hi {
                                let src = if by + 1 < tside {
                                    pt(lv, tid(bx, by + 1), 0, c)
                                } else {
                                    border_at(lv, 1, bx * bs + c + 1)
                                };
                                tr.read(self.gap, src);
                            }
                            for c in c0..hi {
                                tr.write(self.gap, pt(lv, t, bs + 1, c)); // south ghost row
                            }
                        }
                        tr.barrier();
                    }
                }

                // (b) Boundary-column reductions: register-accumulated
                // sweep up the west and east neighbours' edge columns
                // (one long run each), result stored locally.
                for by in 0..tside {
                    for bx in 0..tside {
                        let t = tid(bx, by);
                        let tr = &mut traces[t];
                        for r in 0..bs {
                            let src = if bx > 0 {
                                pt(lv, tid(bx - 1, by), r, bs - 1)
                            } else {
                                border_at(lv, 2, by * bs + r + 1)
                            };
                            tr.read(self.gap, src);
                        }
                        for r in 0..bs {
                            let src = if bx + 1 < tside {
                                pt(lv, tid(bx + 1, by), r, 0)
                            } else {
                                border_at(lv, 3, by * bs + r + 1)
                            };
                            tr.read(self.gap, src);
                        }
                        tr.write(self.gap, partials.elem(t as u64, eb));
                        tr.barrier();
                    }
                }

                // (c) Red/black relaxation: 5-point stencil; rim points
                // read one neighbour-owned (or border) point directly —
                // the run-length-1 population of Figure 2.
                for color in 0..2usize {
                    for by in 0..tside {
                        for bx in 0..tside {
                            let t = tid(bx, by);
                            let tr = &mut traces[t];
                            for r in 0..bs {
                                for c in 0..bs {
                                    if (r + c) % 2 != color {
                                        continue;
                                    }
                                    // North
                                    let north = if r > 0 {
                                        pt(lv, t, r - 1, c)
                                    } else if by > 0 {
                                        pt(lv, tid(bx, by - 1), bs - 1, c)
                                    } else {
                                        border_at(lv, 0, bx * bs + c + 1)
                                    };
                                    tr.read(self.gap, north);
                                    // West
                                    let west = if c > 0 {
                                        pt(lv, t, r, c - 1)
                                    } else if bx > 0 {
                                        pt(lv, tid(bx - 1, by), r, bs - 1)
                                    } else {
                                        border_at(lv, 2, by * bs + r + 1)
                                    };
                                    tr.read(self.gap, west);
                                    // East
                                    let east = if c + 1 < bs {
                                        pt(lv, t, r, c + 1)
                                    } else if bx + 1 < tside {
                                        pt(lv, tid(bx + 1, by), r, 0)
                                    } else {
                                        border_at(lv, 3, by * bs + r + 1)
                                    };
                                    tr.read(self.gap, east);
                                    // South
                                    let south = if r + 1 < bs {
                                        pt(lv, t, r + 1, c)
                                    } else if by + 1 < tside {
                                        pt(lv, tid(bx, by + 1), 0, c)
                                    } else {
                                        border_at(lv, 1, bx * bs + c + 1)
                                    };
                                    tr.read(self.gap, south);
                                    // Center: read-modify-write.
                                    tr.read(self.gap, pt(lv, t, r, c));
                                    tr.write(self.gap, pt(lv, t, r, c));
                                }
                            }
                            tr.barrier();
                        }
                    }
                }
            }

            // Global error reduction: every thread publishes a partial
            // (local write), thread 0 combines them (one access per
            // core: run-length-1 at distinct cores) and raises the
            // flag; everyone then polls the flag (hotspot singles).
            for (t, tr) in traces.iter_mut().enumerate() {
                tr.write(self.gap, partials.elem(t as u64, eb));
                tr.barrier();
            }
            for t in 0..self.threads {
                traces[0].read(self.gap, partials.elem(t as u64, eb));
            }
            traces[0].write(self.gap, flag.elem(0, eb));
            for tr in traces.iter_mut() {
                tr.read(self.gap, flag.elem(0, eb));
                tr.barrier();
            }
        }

        Workload::new("ocean", traces)
    }
}

/// Convenience: generate the default Figure-2-scale OCEAN workload.
pub fn ocean_default() -> Workload {
    OceanConfig::default().generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use em2_model::AccessKind;

    #[test]
    fn small_config_generates() {
        let w = OceanConfig::small().generate();
        assert_eq!(w.num_threads(), 4);
        assert!(w.total_accesses() > 1000);
        for t in &w.threads {
            assert!(!t.is_empty(), "{:?} has empty trace", t.thread);
        }
    }

    #[test]
    fn deterministic() {
        let a = OceanConfig::small().generate();
        let b = OceanConfig::small().generate();
        assert_eq!(a, b);
    }

    #[test]
    fn barriers_are_aligned_across_threads() {
        let w = OceanConfig::small().generate();
        let counts: Vec<usize> = w.threads.iter().map(|t| t.barriers.len()).collect();
        assert!(
            counts.windows(2).all(|c| c[0] == c[1]),
            "all threads must arrive at the same number of barriers: {counts:?}"
        );
    }

    #[test]
    fn init_phase_is_all_writes() {
        let w = OceanConfig::small().generate();
        for t in &w.threads {
            for r in t.phase_records(0) {
                assert_eq!(r.kind, AccessKind::Write, "init must be writes");
            }
        }
    }

    #[test]
    fn stencil_reads_outnumber_writes() {
        let w = OceanConfig::small().generate();
        let s = w.stats(64);
        assert!(
            s.reads > 2 * s.writes,
            "5-point stencil is read-heavy: {s:?}"
        );
    }

    #[test]
    fn blocks_are_private_after_padding() {
        // With padded per-thread blocks, sharing is confined to rim
        // reads and the border/partials/flag regions. The tiny `small()`
        // grid is nearly all rim, so use a medium block size where the
        // interior dominates.
        let w = OceanConfig {
            interior: 64,
            threads: 4,
            cores: 4,
            iterations: 1,
            levels: 1,
            ..OceanConfig::small()
        }
        .generate();
        let s = w.stats(64);
        let f = s.sharing_fraction();
        assert!(f > 0.01, "boundary sharing expected, got {f}");
        assert!(f < 0.5, "padded blocks keep most lines private, got {f}");
    }

    #[test]
    fn effective_levels_respects_minimum_block() {
        assert_eq!(OceanConfig::small().effective_levels(), 2); // 8, 4
        let one = OceanConfig {
            levels: 1,
            ..OceanConfig::small()
        };
        assert_eq!(one.effective_levels(), 1);
        let many = OceanConfig {
            levels: 10,
            ..OceanConfig::small()
        };
        // 16/2=8, 8/2=4, then 4/2=2 < 4 stops.
        assert_eq!(many.effective_levels(), 2);
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn rejects_non_square_threads() {
        OceanConfig {
            threads: 5,
            ..OceanConfig::small()
        }
        .generate();
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn rejects_indivisible_grid() {
        OceanConfig {
            interior: 18,
            threads: 16,
            ..OceanConfig::small()
        }
        .generate();
    }
}
