//! A single memory-trace record.

use em2_model::{AccessKind, Addr};
use std::fmt;

/// One memory access in a thread's trace.
///
/// `gap` is the number of non-memory instructions the thread executes
/// *before* this access (ALU work, branches, ...). The paper's
/// simplified model ignores local compute time, but the simulator uses
/// gaps for timing, and the stack-machine experiments use them to size
/// the instruction window between accesses.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRecord {
    /// Non-memory instructions executed before this access.
    pub gap: u32,
    /// Read or write.
    pub kind: AccessKind,
    /// Byte address accessed.
    pub addr: Addr,
}

impl MemRecord {
    /// A read of `addr` after `gap` non-memory instructions.
    #[inline]
    pub const fn read(gap: u32, addr: Addr) -> Self {
        MemRecord {
            gap,
            kind: AccessKind::Read,
            addr,
        }
    }

    /// A write to `addr` after `gap` non-memory instructions.
    #[inline]
    pub const fn write(gap: u32, addr: Addr) -> Self {
        MemRecord {
            gap,
            kind: AccessKind::Write,
            addr,
        }
    }

    /// True if this record is a write.
    #[inline]
    pub const fn is_write(&self) -> bool {
        self.kind.is_write()
    }
}

impl fmt::Debug for MemRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "+{} {}{:?}", self.gap, self.kind, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let r = MemRecord::read(3, Addr(0x100));
        assert!(!r.is_write());
        assert_eq!(r.gap, 3);
        let w = MemRecord::write(0, Addr(0x200));
        assert!(w.is_write());
    }

    #[test]
    fn debug_format() {
        let r = MemRecord::read(2, Addr(0x40));
        assert_eq!(format!("{r:?}"), "+2 R0x40");
    }

    #[test]
    fn record_is_compact() {
        // The simulator holds millions of these; keep them at 16 bytes.
        assert!(std::mem::size_of::<MemRecord>() <= 16);
    }
}
