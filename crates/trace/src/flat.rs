//! Struct-of-arrays trace layout with line-index interning.
//!
//! The event-driven simulators spend their inner loops walking
//! per-thread access streams and resolving each address's *home* core
//! and *cache line*. In the [`crate::Workload`] layout those are
//! recomputed per access — and for table-backed placements
//! (first-touch, profile-majority) every resolution is a hash lookup.
//! A [`FlatWorkload`] performs that work **once, at build time**:
//!
//! * records are stored as parallel arrays (`gap` / `kind` / `addr` /
//!   `line` / `home`), so replay loops iterate contiguous slices;
//! * every distinct cache line is interned to a dense `u32` index by a
//!   [`LineInterner`], letting coherence state live in `Vec`-indexed
//!   tables instead of `HashMap<LineAddr, _>`;
//! * homes are resolved through the placement exactly once per record,
//!   so running many schemes/configs over the same workload (the E1–E9
//!   sweeps) pays for placement hashing once instead of per run.
//!
//! Replays over a `FlatWorkload` are bit-identical to replays over the
//! `Workload` it was built from: the arrays are a transposition, not a
//! re-interpretation. See DESIGN.md §6 for the performance argument.

use crate::trace::Workload;
use em2_model::{AccessKind, Addr, CoreId, LineAddr, ThreadId};
use std::collections::HashMap;

/// Dense interning of cache-line addresses.
///
/// Assigns each distinct [`LineAddr`] a `u32` index in first-seen
/// order (deterministic for a given workload). The hash map is only
/// consulted at build time and for rare reverse lookups (e.g. cache
/// victims); hot loops carry the dense index.
#[derive(Clone, Debug, Default)]
pub struct LineInterner {
    map: HashMap<u64, u32>,
    lines: Vec<LineAddr>,
}

impl LineInterner {
    /// An empty interner.
    pub fn new() -> Self {
        LineInterner::default()
    }

    /// Index of `line`, allocating the next dense id if unseen.
    pub fn intern(&mut self, line: LineAddr) -> u32 {
        if let Some(&i) = self.map.get(&line.0) {
            return i;
        }
        let i = u32::try_from(self.lines.len()).expect("more than u32::MAX distinct lines");
        self.map.insert(line.0, i);
        self.lines.push(line);
        i
    }

    /// Index of `line` if it has been interned.
    pub fn lookup(&self, line: LineAddr) -> Option<u32> {
        self.map.get(&line.0).copied()
    }

    /// The line with dense index `idx`.
    #[inline]
    pub fn line(&self, idx: u32) -> LineAddr {
        self.lines[idx as usize]
    }

    /// Number of distinct lines interned.
    #[inline]
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True if nothing has been interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

/// One thread's trace, transposed into parallel arrays.
///
/// All record arrays have the same length; index `i` is the thread's
/// `i`-th access in program order.
#[derive(Clone, Debug)]
pub struct FlatThread {
    /// The thread this trace belongs to.
    pub thread: ThreadId,
    /// The thread's native core.
    pub native: CoreId,
    /// Record indices of barrier arrivals (same as [`crate::ThreadTrace::barriers`]).
    pub barriers: Vec<usize>,
    /// Non-memory instructions before each access.
    pub gap: Vec<u32>,
    /// Read/write marker per access.
    pub kind: Vec<AccessKind>,
    /// Byte address per access.
    pub addr: Vec<Addr>,
    /// Interned line index per access.
    pub line: Vec<u32>,
    /// Home core per access, resolved once through the placement.
    pub home: Vec<CoreId>,
}

impl FlatThread {
    /// Number of accesses.
    #[inline]
    pub fn len(&self) -> usize {
        self.addr.len()
    }

    /// True if the thread performs no accesses.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.addr.is_empty()
    }
}

/// A whole workload in struct-of-arrays layout with interned lines and
/// pre-resolved homes. Build once per (workload, placement) pair and
/// replay as many times as needed.
#[derive(Clone, Debug)]
pub struct FlatWorkload {
    /// Workload name (copied from the source [`Workload`]).
    pub name: String,
    /// Line size used for interning, in bytes.
    pub line_bytes: u64,
    /// Per-thread flat traces, indexed by thread id.
    pub threads: Vec<FlatThread>,
    /// Whether the per-access `line` arrays, the interner, and
    /// `line_home` were populated ([`FlatWorkload::build`]) or skipped
    /// ([`FlatWorkload::build_homes_only`]).
    pub line_indexed: bool,
    /// The line interner (dense index ↔ [`LineAddr`]); empty when
    /// `line_indexed` is false.
    pub interner: LineInterner,
    /// Home core per interned line (home of the first access touching
    /// the line). With any line-or-coarser placement granularity this
    /// equals every access's home for that line.
    pub line_home: Vec<CoreId>,
    /// Highest home-core index any access resolves to.
    pub max_home_index: usize,
}

impl FlatWorkload {
    /// Transpose `workload`, interning lines of `line_bytes` and
    /// resolving every record's home through `home_of`.
    pub fn build(workload: &Workload, line_bytes: u64, home_of: impl Fn(Addr) -> CoreId) -> Self {
        Self::build_inner(workload, line_bytes, home_of, true)
    }

    /// [`FlatWorkload::build`] without the line index — for consumers
    /// that only need pre-resolved homes (the EM²/EM²-RA simulators):
    /// skips the one interner hash per record that only dense-line
    /// consumers (the MSI baseline) pay for.
    pub fn build_homes_only(
        workload: &Workload,
        line_bytes: u64,
        home_of: impl Fn(Addr) -> CoreId,
    ) -> Self {
        Self::build_inner(workload, line_bytes, home_of, false)
    }

    fn build_inner(
        workload: &Workload,
        line_bytes: u64,
        home_of: impl Fn(Addr) -> CoreId,
        line_indexed: bool,
    ) -> Self {
        assert!(line_bytes.is_power_of_two());
        let mut interner = LineInterner::new();
        let mut line_home: Vec<CoreId> = Vec::new();
        let mut max_home_index = 0usize;
        let threads = workload
            .threads
            .iter()
            .map(|t| {
                let n = t.records.len();
                let mut ft = FlatThread {
                    thread: t.thread,
                    native: t.native,
                    barriers: t.barriers.clone(),
                    gap: Vec::with_capacity(n),
                    kind: Vec::with_capacity(n),
                    addr: Vec::with_capacity(n),
                    line: Vec::with_capacity(n),
                    home: Vec::with_capacity(n),
                };
                for r in &t.records {
                    let home = home_of(r.addr);
                    if line_indexed {
                        let idx = interner.intern(r.addr.line(line_bytes));
                        if idx as usize == line_home.len() {
                            line_home.push(home);
                        }
                        ft.line.push(idx);
                    }
                    max_home_index = max_home_index.max(home.index());
                    ft.gap.push(r.gap);
                    ft.kind.push(r.kind);
                    ft.addr.push(r.addr);
                    ft.home.push(home);
                }
                ft
            })
            .collect();
        FlatWorkload {
            name: workload.name.clone(),
            line_bytes,
            threads,
            line_indexed,
            interner,
            line_home,
            max_home_index,
        }
    }

    /// Number of threads.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Number of distinct lines touched.
    #[inline]
    pub fn num_lines(&self) -> usize {
        self.interner.len()
    }

    /// Total accesses across all threads.
    pub fn total_accesses(&self) -> usize {
        self.threads.iter().map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::micro;

    fn striped_home(cores: u64) -> impl Fn(Addr) -> CoreId {
        move |a: Addr| CoreId::from(((a.0 / 64) % cores) as usize)
    }

    #[test]
    fn interner_is_dense_and_stable() {
        let mut i = LineInterner::new();
        assert!(i.is_empty());
        let a = i.intern(LineAddr(100));
        let b = i.intern(LineAddr(7));
        assert_eq!(i.intern(LineAddr(100)), a, "re-interning is idempotent");
        assert_eq!((a, b), (0, 1), "ids are first-seen order");
        assert_eq!(i.len(), 2);
        assert_eq!(i.line(b), LineAddr(7));
        assert_eq!(i.lookup(LineAddr(7)), Some(1));
        assert_eq!(i.lookup(LineAddr(8)), None);
    }

    #[test]
    fn flat_transposition_preserves_every_field() {
        let w = micro::uniform(4, 4, 200, 128, 0.3, 9);
        let f = FlatWorkload::build(&w, 64, striped_home(4));
        assert_eq!(f.num_threads(), w.num_threads());
        assert_eq!(f.total_accesses(), w.total_accesses());
        for (t, ft) in w.threads.iter().zip(&f.threads) {
            assert_eq!(ft.thread, t.thread);
            assert_eq!(ft.native, t.native);
            assert_eq!(ft.barriers, t.barriers);
            assert_eq!(ft.len(), t.records.len());
            for (i, r) in t.records.iter().enumerate() {
                assert_eq!(ft.gap[i], r.gap);
                assert_eq!(ft.kind[i], r.kind);
                assert_eq!(ft.addr[i], r.addr);
                assert_eq!(f.interner.line(ft.line[i]), r.addr.line(64));
                assert_eq!(ft.home[i], striped_home(4)(r.addr));
            }
        }
    }

    #[test]
    fn line_home_matches_per_access_homes_for_line_granular_placement() {
        let w = micro::uniform(4, 4, 300, 256, 0.5, 3);
        let f = FlatWorkload::build(&w, 64, striped_home(4));
        assert_eq!(f.line_home.len(), f.num_lines());
        for ft in &f.threads {
            for i in 0..ft.len() {
                assert_eq!(f.line_home[ft.line[i] as usize], ft.home[i]);
            }
        }
        assert!(f.max_home_index < 4);
    }

    #[test]
    fn homes_only_build_skips_the_line_index() {
        let w = micro::uniform(4, 4, 200, 128, 0.3, 9);
        let full = FlatWorkload::build(&w, 64, striped_home(4));
        let slim = FlatWorkload::build_homes_only(&w, 64, striped_home(4));
        assert!(full.line_indexed && !slim.line_indexed);
        assert_eq!(slim.num_lines(), 0);
        assert!(slim.line_home.is_empty());
        assert_eq!(slim.max_home_index, full.max_home_index);
        for (f, s) in full.threads.iter().zip(&slim.threads) {
            assert!(s.line.is_empty());
            assert_eq!(f.home, s.home, "homes are identical either way");
            assert_eq!(f.addr, s.addr);
            assert_eq!(f.gap, s.gap);
        }
    }

    #[test]
    fn same_workload_builds_identical_flats() {
        let w = micro::pingpong(2, 4, 20);
        let a = FlatWorkload::build(&w, 64, striped_home(4));
        let b = FlatWorkload::build(&w, 64, striped_home(4));
        assert_eq!(a.num_lines(), b.num_lines());
        for (x, y) in a.threads.iter().zip(&b.threads) {
            assert_eq!(x.line, y.line, "interning order is deterministic");
            assert_eq!(x.home, y.home);
        }
    }
}
