//! # em2-trace
//!
//! Memory-trace infrastructure for the EM² reproduction.
//!
//! The paper evaluates EM² by running SPLASH-2 programs under the
//! Graphite simulator and analyzing the resulting per-thread memory
//! access streams (Figure 2). We cannot ship SPLASH-2 binaries, so this
//! crate provides **synthetic trace generators that reproduce the
//! sharing structure** of the relevant kernels (see DESIGN.md §3 for
//! the substitution argument):
//!
//! * [`gen::ocean`] — red-black Gauss-Seidel stencil over a
//!   block-partitioned 2-D grid (the SPLASH-2 OCEAN stand-in behind
//!   Figure 2);
//! * [`gen::fft`] — butterfly + transpose phases (all-to-all);
//! * [`gen::lu`] — blocked LU with diagonal-block broadcast;
//! * [`gen::radix`] — histogram + scatter permutation;
//! * [`gen::micro`] — microbenchmarks: private-only, uniform-random,
//!   ping-pong, producer-consumer, hotspot;
//! * [`gen::synth`] — parametric run-length mixtures for the §3
//!   dynamic-program experiments.
//!
//! A [`Workload`] is a set of per-thread traces plus barrier positions
//! (SPLASH-2 kernels are barrier-synchronized phase programs, and
//! first-touch placement depends on phase order). Traces are
//! deterministic: the same config and seed always produce the same
//! workload.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod addr;
pub mod codec;
pub mod flat;
pub mod gen;
pub mod record;
pub mod trace;

pub use addr::AddressSpace;
pub use flat::{FlatThread, FlatWorkload, LineInterner};
pub use record::MemRecord;
pub use trace::{ThreadTrace, Workload, WorkloadStats};
