//! Address-space layout for synthetic workloads.
//!
//! Generators allocate named regions (grids, matrices, per-thread
//! stacks) out of a flat 64-bit byte space. Regions are aligned to a
//! configurable granularity so that first-touch placement at line or
//! page granularity never sees two regions sharing a unit by accident.

use em2_model::Addr;

/// A contiguous, aligned region of the simulated address space.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Region {
    /// Region label (for debugging and trace dumps).
    pub name: String,
    /// First byte address.
    pub base: Addr,
    /// Size in bytes.
    pub bytes: u64,
}

impl Region {
    /// Address of the `i`-th element of `elem_bytes`-sized elements.
    ///
    /// # Panics
    /// Panics (debug) if the element lies outside the region.
    #[inline]
    pub fn elem(&self, i: u64, elem_bytes: u64) -> Addr {
        debug_assert!(
            (i + 1) * elem_bytes <= self.bytes,
            "element {i} out of region '{}' ({} bytes)",
            self.name,
            self.bytes
        );
        Addr(self.base.0 + i * elem_bytes)
    }

    /// Address of element `(row, col)` in a row-major 2-D layout with
    /// `cols` columns.
    #[inline]
    pub fn at2d(&self, row: u64, col: u64, cols: u64, elem_bytes: u64) -> Addr {
        debug_assert!(col < cols, "column {col} out of {cols}");
        self.elem(row * cols + col, elem_bytes)
    }

    /// One-past-the-end address.
    #[inline]
    pub fn end(&self) -> Addr {
        Addr(self.base.0 + self.bytes)
    }

    /// True if `a` falls inside this region.
    #[inline]
    pub fn contains(&self, a: Addr) -> bool {
        a.0 >= self.base.0 && a.0 < self.base.0 + self.bytes
    }
}

/// A bump allocator over the simulated address space.
#[derive(Clone, Debug)]
pub struct AddressSpace {
    next: u64,
    align: u64,
    regions: Vec<Region>,
}

impl AddressSpace {
    /// A fresh address space starting at `base`, aligning every region
    /// to `align` bytes (must be a power of two; use the first-touch
    /// granularity or larger).
    pub fn new(base: u64, align: u64) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        AddressSpace {
            next: base.next_multiple_of(align),
            align,
            regions: Vec::new(),
        }
    }

    /// Default space: starts at 64 KiB (leaving page zero unused, as a
    /// real OS would), 4 KiB-aligned regions.
    pub fn with_page_alignment() -> Self {
        AddressSpace::new(0x1_0000, 4096)
    }

    /// Allocate a region of `bytes` bytes.
    pub fn alloc(&mut self, name: impl Into<String>, bytes: u64) -> Region {
        let base = self.next;
        let size = bytes.max(1).next_multiple_of(self.align);
        self.next += size;
        let region = Region {
            name: name.into(),
            base: Addr(base),
            bytes: size,
        };
        self.regions.push(region.clone());
        region
    }

    /// Allocate a row-major 2-D array of `rows × cols` elements.
    pub fn alloc2d(
        &mut self,
        name: impl Into<String>,
        rows: u64,
        cols: u64,
        elem_bytes: u64,
    ) -> Region {
        self.alloc(name, rows * cols * elem_bytes)
    }

    /// Allocate one region per thread (e.g. private stacks), returning
    /// them in thread order.
    pub fn alloc_per_thread(&mut self, name: &str, threads: usize, bytes_each: u64) -> Vec<Region> {
        (0..threads)
            .map(|t| self.alloc(format!("{name}[{t}]"), bytes_each))
            .collect()
    }

    /// All regions allocated so far.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Total bytes allocated (including alignment padding).
    pub fn allocated_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.bytes).sum()
    }

    /// Find the region containing an address, if any.
    pub fn region_of(&self, a: Addr) -> Option<&Region> {
        self.regions.iter().find(|r| r.contains(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_aligned() {
        let mut sp = AddressSpace::new(0, 256);
        let a = sp.alloc("a", 100);
        let b = sp.alloc("b", 300);
        let c = sp.alloc("c", 1);
        for r in [&a, &b, &c] {
            assert_eq!(r.base.0 % 256, 0, "{} misaligned", r.name);
        }
        assert!(a.end().0 <= b.base.0);
        assert!(b.end().0 <= c.base.0);
    }

    #[test]
    fn elem_addressing() {
        let mut sp = AddressSpace::new(0x1000, 64);
        let r = sp.alloc("arr", 64 * 4);
        assert_eq!(r.elem(0, 4), Addr(r.base.0));
        assert_eq!(r.elem(5, 4), Addr(r.base.0 + 20));
    }

    #[test]
    fn at2d_row_major() {
        let mut sp = AddressSpace::new(0, 64);
        let r = sp.alloc2d("grid", 4, 8, 4);
        assert_eq!(r.at2d(0, 0, 8, 4), r.base);
        assert_eq!(r.at2d(1, 0, 8, 4).0, r.base.0 + 32);
        assert_eq!(r.at2d(2, 3, 8, 4).0, r.base.0 + (2 * 8 + 3) * 4);
    }

    #[test]
    #[should_panic]
    fn elem_out_of_bounds_panics_in_debug() {
        let mut sp = AddressSpace::new(0, 64);
        let r = sp.alloc("small", 8);
        // 64-byte aligned region is padded to 64 bytes; index beyond that.
        let _ = r.elem(100, 4);
    }

    #[test]
    fn per_thread_regions() {
        let mut sp = AddressSpace::with_page_alignment();
        let stacks = sp.alloc_per_thread("stack", 4, 8192);
        assert_eq!(stacks.len(), 4);
        for w in stacks.windows(2) {
            assert!(w[0].end().0 <= w[1].base.0);
        }
        assert_eq!(sp.allocated_bytes(), 4 * 8192);
    }

    #[test]
    fn region_of_finds_owner() {
        let mut sp = AddressSpace::new(0, 64);
        let a = sp.alloc("a", 64);
        let b = sp.alloc("b", 64);
        assert_eq!(sp.region_of(Addr(a.base.0 + 10)).unwrap().name, "a");
        assert_eq!(sp.region_of(Addr(b.base.0)).unwrap().name, "b");
        assert!(sp.region_of(Addr(1 << 40)).is_none());
    }

    #[test]
    fn zero_sized_alloc_still_advances() {
        let mut sp = AddressSpace::new(0, 64);
        let a = sp.alloc("z", 0);
        let b = sp.alloc("after", 64);
        assert!(a.bytes >= 1);
        assert_ne!(a.base, b.base);
    }
}
