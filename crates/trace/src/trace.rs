//! Per-thread traces and whole-program workloads.

use crate::record::MemRecord;
use em2_model::{AccessKind, Addr, CoreId, LineAddr, ThreadId};
use std::collections::HashMap;
use std::fmt;

/// The memory trace of one thread, together with its native core and
/// barrier positions.
///
/// SPLASH-2 kernels are phase programs separated by barriers; EM²'s
/// first-touch placement and the simulator's synchronization both need
/// to know where those phase boundaries fall. `barriers[k]` is the
/// record index at which the thread arrives at barrier `k` (i.e., the
/// first `barriers[k]` records belong to phases `0..=k`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadTrace {
    /// The thread this trace belongs to.
    pub thread: ThreadId,
    /// The core the thread originated on (its native context's home).
    pub native: CoreId,
    /// The access stream, in program order.
    pub records: Vec<MemRecord>,
    /// Record indices of barrier arrivals, non-decreasing.
    pub barriers: Vec<usize>,
}

impl ThreadTrace {
    /// An empty trace for `thread` native to `native`.
    pub fn new(thread: ThreadId, native: CoreId) -> Self {
        ThreadTrace {
            thread,
            native,
            records: Vec::new(),
            barriers: Vec::new(),
        }
    }

    /// Append an access.
    #[inline]
    pub fn push(&mut self, rec: MemRecord) {
        self.records.push(rec);
    }

    /// Append a read.
    #[inline]
    pub fn read(&mut self, gap: u32, addr: Addr) {
        self.push(MemRecord::read(gap, addr));
    }

    /// Append a write.
    #[inline]
    pub fn write(&mut self, gap: u32, addr: Addr) {
        self.push(MemRecord::write(gap, addr));
    }

    /// Mark a barrier arrival at the current position.
    pub fn barrier(&mut self) {
        self.barriers.push(self.records.len());
    }

    /// Number of accesses.
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the trace has no accesses.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The phase (number of barriers passed) of record `idx`.
    pub fn phase_of(&self, idx: usize) -> usize {
        self.barriers.partition_point(|&b| b <= idx)
    }

    /// Iterate over the records of phase `p` (records between barrier
    /// `p-1` and barrier `p`; phase indices beyond the last barrier
    /// yield the tail).
    pub fn phase_records(&self, p: usize) -> &[MemRecord] {
        let start = if p == 0 {
            0
        } else {
            self.barriers
                .get(p - 1)
                .copied()
                .unwrap_or(self.records.len())
        };
        let end = self.barriers.get(p).copied().unwrap_or(self.records.len());
        &self.records[start..end]
    }

    /// Number of phases (barriers + trailing phase, if non-empty).
    pub fn phases(&self) -> usize {
        let trailing = self
            .barriers
            .last()
            .map_or(!self.records.is_empty(), |&b| b < self.records.len());
        self.barriers.len() + usize::from(trailing)
    }
}

/// A complete multi-threaded workload: one trace per thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Workload {
    /// Human-readable workload name (e.g. `"ocean"`).
    pub name: String,
    /// Per-thread traces, indexed by thread id.
    pub threads: Vec<ThreadTrace>,
}

impl Workload {
    /// Build a workload, checking thread ids are dense `0..n`.
    ///
    /// # Panics
    /// Panics if thread ids are not `0, 1, 2, …` in order.
    pub fn new(name: impl Into<String>, threads: Vec<ThreadTrace>) -> Self {
        for (i, t) in threads.iter().enumerate() {
            assert_eq!(t.thread.index(), i, "thread ids must be dense and ordered");
        }
        Workload {
            name: name.into(),
            threads,
        }
    }

    /// Number of threads.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Total number of accesses across all threads.
    pub fn total_accesses(&self) -> usize {
        self.threads.iter().map(|t| t.len()).sum()
    }

    /// The native core of a thread.
    #[inline]
    pub fn native_of(&self, t: ThreadId) -> CoreId {
        self.threads[t.index()].native
    }

    /// Maximum number of phases over all threads.
    pub fn phases(&self) -> usize {
        self.threads.iter().map(|t| t.phases()).max().unwrap_or(0)
    }

    /// Compute summary statistics.
    pub fn stats(&self, line_bytes: u64) -> WorkloadStats {
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut line_touchers: HashMap<LineAddr, (u32, bool)> = HashMap::new();
        let mut min_addr = u64::MAX;
        let mut max_addr = 0u64;
        for t in &self.threads {
            for r in &t.records {
                match r.kind {
                    AccessKind::Read => reads += 1,
                    AccessKind::Write => writes += 1,
                }
                min_addr = min_addr.min(r.addr.0);
                max_addr = max_addr.max(r.addr.0);
                let line = r.addr.line(line_bytes);
                let entry = line_touchers.entry(line).or_insert((t.thread.0, false));
                if entry.0 != t.thread.0 {
                    entry.1 = true; // touched by more than one thread
                }
            }
        }
        let lines_touched = line_touchers.len() as u64;
        let shared_lines = line_touchers.values().filter(|(_, shared)| *shared).count() as u64;
        WorkloadStats {
            threads: self.num_threads(),
            accesses: reads + writes,
            reads,
            writes,
            lines_touched,
            shared_lines,
            footprint_bytes: if reads + writes == 0 {
                0
            } else {
                lines_touched * line_bytes
            },
            min_addr: if reads + writes == 0 { 0 } else { min_addr },
            max_addr,
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} threads, {} accesses",
            self.name,
            self.num_threads(),
            self.total_accesses()
        )
    }
}

/// Summary statistics of a workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkloadStats {
    /// Number of threads.
    pub threads: usize,
    /// Total accesses.
    pub accesses: u64,
    /// Read count.
    pub reads: u64,
    /// Write count.
    pub writes: u64,
    /// Distinct cache lines touched.
    pub lines_touched: u64,
    /// Lines touched by more than one thread.
    pub shared_lines: u64,
    /// Footprint in bytes (lines touched × line size).
    pub footprint_bytes: u64,
    /// Lowest byte address touched.
    pub min_addr: u64,
    /// Highest byte address touched.
    pub max_addr: u64,
}

impl WorkloadStats {
    /// Fraction of accesses that are reads.
    pub fn read_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.reads as f64 / self.accesses as f64
        }
    }

    /// Fraction of touched lines shared between threads.
    pub fn sharing_fraction(&self) -> f64 {
        if self.lines_touched == 0 {
            0.0
        } else {
            self.shared_lines as f64 / self.lines_touched as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_with(thread: u32, native: u16, n: usize) -> ThreadTrace {
        let mut t = ThreadTrace::new(ThreadId(thread), CoreId(native));
        for i in 0..n {
            t.read(1, Addr(i as u64 * 4));
        }
        t
    }

    #[test]
    fn phases_and_barriers() {
        let mut t = ThreadTrace::new(ThreadId(0), CoreId(0));
        t.read(0, Addr(0));
        t.read(0, Addr(4));
        t.barrier();
        t.write(0, Addr(8));
        t.barrier();
        // trailing phase empty
        assert_eq!(t.phases(), 2);
        assert_eq!(t.phase_of(0), 0);
        assert_eq!(t.phase_of(1), 0);
        assert_eq!(t.phase_of(2), 1);
        assert_eq!(t.phase_records(0).len(), 2);
        assert_eq!(t.phase_records(1).len(), 1);
        assert_eq!(t.phase_records(2).len(), 0);
    }

    #[test]
    fn trailing_phase_counts() {
        let mut t = ThreadTrace::new(ThreadId(0), CoreId(0));
        t.read(0, Addr(0));
        t.barrier();
        t.read(0, Addr(4)); // trailing phase
        assert_eq!(t.phases(), 2);
        assert_eq!(t.phase_records(1).len(), 1);
    }

    #[test]
    fn empty_trace() {
        let t = ThreadTrace::new(ThreadId(0), CoreId(0));
        assert!(t.is_empty());
        assert_eq!(t.phases(), 0);
    }

    #[test]
    fn workload_stats_counts() {
        let mut a = trace_with(0, 0, 4);
        a.write(0, Addr(0)); // write to shared-with-self line (not shared)
        let mut b = trace_with(1, 1, 0);
        b.read(0, Addr(0)); // shares line 0 with thread 0
        b.write(0, Addr(1 << 20));
        let w = Workload::new("t", vec![a, b]);
        let s = w.stats(64);
        assert_eq!(s.threads, 2);
        assert_eq!(s.accesses, 7);
        assert_eq!(s.reads, 5);
        assert_eq!(s.writes, 2);
        assert_eq!(s.shared_lines, 1);
        assert!(s.lines_touched >= 2);
        assert!(s.read_fraction() > 0.7);
        assert!(s.sharing_fraction() > 0.0);
        assert_eq!(s.max_addr, 1 << 20);
    }

    #[test]
    fn empty_workload_stats() {
        let w = Workload::new("empty", vec![ThreadTrace::new(ThreadId(0), CoreId(0))]);
        let s = w.stats(64);
        assert_eq!(s.accesses, 0);
        assert_eq!(s.footprint_bytes, 0);
        assert_eq!(s.read_fraction(), 0.0);
        assert_eq!(s.sharing_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn non_dense_thread_ids_rejected() {
        let t = ThreadTrace::new(ThreadId(1), CoreId(0));
        let _ = Workload::new("bad", vec![t]);
    }

    #[test]
    fn native_lookup() {
        let w = Workload::new("n", vec![trace_with(0, 5, 1), trace_with(1, 6, 1)]);
        assert_eq!(w.native_of(ThreadId(0)), CoreId(5));
        assert_eq!(w.native_of(ThreadId(1)), CoreId(6));
    }
}
