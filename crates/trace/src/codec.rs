//! Plain-text workload serialization.
//!
//! A small line-oriented format so workloads can be saved, diffed, and
//! reloaded (golden traces in tests, exchange with external tools):
//!
//! ```text
//! em2-workload v1
//! name ocean
//! threads 2
//! thread 0 native 0
//! b 128
//! r 2 0x10000
//! w 0 0x10008
//! thread 1 native 1
//! ...
//! end
//! ```
//!
//! `b <idx>` records a barrier at record index `idx`; `r`/`w` lines are
//! `<kind> <gap> <hex addr>` in program order.

use crate::record::MemRecord;
use crate::trace::{ThreadTrace, Workload};
use em2_model::{Addr, CoreId, ThreadId};
use std::fmt::Write as _;

/// Errors from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Header line missing or wrong version.
    BadHeader(String),
    /// A malformed line, with its 1-based line number.
    BadLine(usize, String),
    /// Input ended before `end`.
    UnexpectedEof,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadHeader(h) => write!(f, "bad header: {h:?}"),
            CodecError::BadLine(n, l) => write!(f, "bad line {n}: {l:?}"),
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serialize a workload to the text format.
pub fn format(w: &Workload) -> String {
    let mut out = String::new();
    out.push_str("em2-workload v1\n");
    let _ = writeln!(out, "name {}", w.name);
    let _ = writeln!(out, "threads {}", w.num_threads());
    for t in &w.threads {
        let _ = writeln!(out, "thread {} native {}", t.thread.0, t.native.0);
        let mut next_barrier = 0usize;
        for (i, r) in t.records.iter().enumerate() {
            while next_barrier < t.barriers.len() && t.barriers[next_barrier] == i {
                let _ = writeln!(out, "b {i}");
                next_barrier += 1;
            }
            let k = if r.is_write() { 'w' } else { 'r' };
            let _ = writeln!(out, "{k} {} 0x{:x}", r.gap, r.addr.0);
        }
        while next_barrier < t.barriers.len() {
            let _ = writeln!(out, "b {}", t.barriers[next_barrier]);
            next_barrier += 1;
        }
    }
    out.push_str("end\n");
    out
}

/// Parse the text format back into a workload.
pub fn parse(text: &str) -> Result<Workload, CodecError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(CodecError::UnexpectedEof)?;
    if header.trim() != "em2-workload v1" {
        return Err(CodecError::BadHeader(header.to_string()));
    }

    let mut name = String::new();
    let mut threads: Vec<ThreadTrace> = Vec::new();
    let mut current: Option<ThreadTrace> = None;
    let mut saw_end = false;

    for (n, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = || CodecError::BadLine(n + 1, raw.to_string());
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("name") => {
                name = parts.collect::<Vec<_>>().join(" ");
            }
            Some("threads") => { /* informational; validated at the end */ }
            Some("thread") => {
                if let Some(t) = current.take() {
                    threads.push(t);
                }
                let tid: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let kw = parts.next().ok_or_else(bad)?;
                if kw != "native" {
                    return Err(bad());
                }
                let core: u16 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                current = Some(ThreadTrace::new(ThreadId(tid), CoreId(core)));
            }
            Some("b") => {
                let idx: usize = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let t = current.as_mut().ok_or_else(bad)?;
                if idx != t.records.len() {
                    return Err(bad());
                }
                t.barrier();
            }
            Some(k @ ("r" | "w")) => {
                let gap: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let hex = parts.next().ok_or_else(bad)?;
                let hex = hex.strip_prefix("0x").ok_or_else(bad)?;
                let addr = u64::from_str_radix(hex, 16).map_err(|_| bad())?;
                let t = current.as_mut().ok_or_else(bad)?;
                let rec = if k == "r" {
                    MemRecord::read(gap, Addr(addr))
                } else {
                    MemRecord::write(gap, Addr(addr))
                };
                t.push(rec);
            }
            Some("end") => {
                saw_end = true;
                break;
            }
            _ => return Err(bad()),
        }
    }
    if !saw_end {
        return Err(CodecError::UnexpectedEof);
    }
    if let Some(t) = current.take() {
        threads.push(t);
    }
    Ok(Workload::new(name, threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::micro;

    #[test]
    fn round_trip_small_workload() {
        let w = micro::pingpong(2, 4, 5);
        let text = format(&w);
        let back = parse(&text).unwrap();
        assert_eq!(w, back);
    }

    #[test]
    fn round_trip_preserves_barriers() {
        let w = micro::producer_consumer(3, 3, 4, 2);
        let back = parse(&format(&w)).unwrap();
        for (a, b) in w.threads.iter().zip(&back.threads) {
            assert_eq!(a.barriers, b.barriers);
        }
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            parse("nonsense\nend\n"),
            Err(CodecError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_truncated_input() {
        let w = micro::pingpong(1, 2, 2);
        let text = format(&w);
        let cut = &text[..text.len() - 5];
        assert!(matches!(parse(cut), Err(CodecError::UnexpectedEof)));
    }

    #[test]
    fn rejects_malformed_record() {
        let text = "em2-workload v1\nname x\nthreads 1\nthread 0 native 0\nr nope 0x10\nend\n";
        assert!(matches!(parse(text), Err(CodecError::BadLine(5, _))));
    }

    #[test]
    fn rejects_record_before_thread() {
        let text = "em2-workload v1\nname x\nr 0 0x10\nend\n";
        assert!(matches!(parse(text), Err(CodecError::BadLine(_, _))));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let w = micro::pingpong(1, 2, 1);
        let mut text = format(&w);
        text = text.replace("name pingpong", "# hello\n\nname pingpong");
        assert_eq!(parse(&text).unwrap(), w);
    }

    #[test]
    fn barrier_at_wrong_index_rejected() {
        let text = "em2-workload v1\nname x\nthread 0 native 0\nb 5\nend\n";
        assert!(matches!(parse(text), Err(CodecError::BadLine(_, _))));
    }
}
