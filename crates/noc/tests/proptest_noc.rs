//! Property-based NoC tests: arbitrary traffic patterns must drain
//! without loss, duplication, or deadlock, and contention can only
//! increase latency relative to the closed-form floor.

use em2_model::{CoreId, CostModel, Mesh};
use em2_noc::{CycleNoc, NocConfig, VirtualChannel};
use proptest::prelude::*;
use std::collections::HashSet;

fn vc_from(i: u8) -> VirtualChannel {
    VirtualChannel::ALL[i as usize % VirtualChannel::COUNT]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_traffic_drains_completely(
        pkts in prop::collection::vec((0u8..16, 0u8..16, any::<u8>(), 32u64..2048), 1..120),
        buf_depth in 1usize..6,
    ) {
        let mesh = Mesh::new(4, 4);
        let mut noc = CycleNoc::new(NocConfig {
            mesh,
            buf_depth,
            ..NocConfig::default()
        });
        let mut ids = HashSet::new();
        for (s, d, vc, bits) in pkts {
            let id = noc.inject(
                CoreId(s as u16),
                CoreId(d as u16),
                vc_from(vc),
                bits,
            );
            ids.insert(id);
        }
        prop_assert!(
            noc.run_until_idle(5_000_000).is_some(),
            "random traffic deadlocked"
        );
        let delivered: HashSet<_> = noc.take_deliveries().iter().map(|d| d.info.id).collect();
        prop_assert_eq!(delivered, ids, "loss or duplication");
    }

    #[test]
    fn latency_never_beats_the_closed_form(
        pkts in prop::collection::vec((0u8..16, 0u8..16, 32u64..1024), 1..60),
    ) {
        // Under any contention, a packet's latency is at least the
        // uncontended closed-form value.
        let mesh = Mesh::new(4, 4);
        let cm = CostModel::builder().mesh(mesh).hop_latency(1).build();
        let mut noc = CycleNoc::new(NocConfig {
            mesh,
            ..NocConfig::default()
        });
        let mut floors = Vec::new();
        for (s, d, bits) in pkts {
            let src = CoreId(s as u16);
            let dst = CoreId(d as u16);
            let id = noc.inject(src, dst, VirtualChannel::Migration, bits);
            floors.push((id, cm.one_way(src, dst, bits) + 2));
        }
        noc.run_until_idle(5_000_000).unwrap();
        let deliveries = noc.take_deliveries();
        for (id, floor) in floors {
            let d = deliveries.iter().find(|d| d.info.id == id).unwrap();
            prop_assert!(
                d.latency() >= floor,
                "packet {:?} latency {} below physical floor {}",
                id, d.latency(), floor
            );
        }
    }

    #[test]
    fn per_vc_counters_are_conserved(
        pkts in prop::collection::vec((0u8..9, 0u8..9, any::<u8>(), 32u64..512), 1..60),
    ) {
        let mesh = Mesh::new(3, 3);
        let mut noc = CycleNoc::new(NocConfig {
            mesh,
            ..NocConfig::default()
        });
        let mut per_vc = [0u64; VirtualChannel::COUNT];
        for (s, d, vc, bits) in pkts {
            let vc = vc_from(vc);
            noc.inject(CoreId(s as u16), CoreId(d as u16), vc, bits);
            per_vc[vc.index()] += 1;
        }
        noc.run_until_idle(5_000_000).unwrap();
        for vc in VirtualChannel::ALL {
            prop_assert_eq!(
                noc.stats().per_vc_delivered[vc.index()],
                per_vc[vc.index()],
                "class {} lost packets", vc
            );
        }
        let total: u64 = noc.stats().per_vc_delivered.iter().sum();
        prop_assert_eq!(total, noc.stats().delivered);
    }
}
