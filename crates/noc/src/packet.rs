//! Packets and wormhole flits.

use crate::vc::VirtualChannel;
use em2_model::CoreId;

/// Unique packet identifier within one [`crate::CycleNoc`] instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PacketId(pub u64);

/// Position of a flit within its packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlitKind {
    /// First flit (carries the route).
    Head,
    /// Middle flit.
    Body,
    /// Last flit (releases the wormhole path).
    Tail,
    /// Single-flit packet (head and tail at once).
    HeadTail,
}

impl FlitKind {
    /// True for `Head` and `HeadTail`.
    #[inline]
    pub const fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// True for `Tail` and `HeadTail`.
    #[inline]
    pub const fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// One flit in flight.
#[derive(Clone, Copy, Debug)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Head/body/tail marker.
    pub kind: FlitKind,
    /// Final destination core (replicated in every flit so routers
    /// need no per-packet lookup table).
    pub dst: CoreId,
    /// Traffic class.
    pub vc: VirtualChannel,
}

/// Metadata for a packet, kept by the network while in flight and
/// returned with its delivery.
#[derive(Clone, Copy, Debug)]
pub struct PacketInfo {
    /// Packet id.
    pub id: PacketId,
    /// Source core.
    pub src: CoreId,
    /// Destination core.
    pub dst: CoreId,
    /// Traffic class.
    pub vc: VirtualChannel,
    /// Payload size in bits (header excluded).
    pub payload_bits: u64,
    /// Number of flits the packet serializes into.
    pub flits: u64,
    /// Cycle the packet was injected.
    pub injected_at: u64,
}

impl PacketInfo {
    /// Flitize the packet: the sequence of flit kinds.
    pub fn flit_kinds(&self) -> impl Iterator<Item = FlitKind> {
        let n = self.flits;
        (0..n).map(move |i| match (i, n) {
            (0, 1) => FlitKind::HeadTail,
            (0, _) => FlitKind::Head,
            (i, n) if i + 1 == n => FlitKind::Tail,
            _ => FlitKind::Body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(flits: u64) -> PacketInfo {
        PacketInfo {
            id: PacketId(1),
            src: CoreId(0),
            dst: CoreId(5),
            vc: VirtualChannel::Migration,
            payload_bits: 100,
            flits,
            injected_at: 0,
        }
    }

    #[test]
    fn single_flit_packet_is_headtail() {
        let kinds: Vec<_> = info(1).flit_kinds().collect();
        assert_eq!(kinds, vec![FlitKind::HeadTail]);
        assert!(FlitKind::HeadTail.is_head() && FlitKind::HeadTail.is_tail());
    }

    #[test]
    fn multi_flit_structure() {
        let kinds: Vec<_> = info(4).flit_kinds().collect();
        assert_eq!(
            kinds,
            vec![
                FlitKind::Head,
                FlitKind::Body,
                FlitKind::Body,
                FlitKind::Tail
            ]
        );
        assert!(kinds[0].is_head() && !kinds[0].is_tail());
        assert!(kinds[3].is_tail() && !kinds[3].is_head());
    }

    #[test]
    fn two_flit_packet_has_no_body() {
        let kinds: Vec<_> = info(2).flit_kinds().collect();
        assert_eq!(kinds, vec![FlitKind::Head, FlitKind::Tail]);
    }
}
