//! # em2-noc
//!
//! A cycle-level 2-D mesh network-on-chip for the EM² reproduction.
//!
//! The paper's architectures place hard requirements on the
//! interconnect: migrations, evictions (Cho et al. \[10\]), and
//! remote-access requests/responses must travel on **separate virtual
//! subnetworks** — six virtual channels in total (§3) — so that the
//! protocol-level dependency cycles (migration → eviction,
//! request → response) can never deadlock in the network.
//!
//! This crate implements:
//!
//! * [`vc::VirtualChannel`] — the six traffic classes;
//! * [`packet`] — packets and wormhole flits;
//! * [`router`] — an input-buffered wormhole router with per-VC FIFOs,
//!   credit-based flow control, X-Y dimension-ordered routing, and
//!   round-robin output arbitration;
//! * [`network::CycleNoc`] — the full mesh: inject packets, step
//!   cycles, collect deliveries and statistics.
//!
//! The closed-form latency model the rest of the workspace uses by
//! default lives in [`em2_model::CostModel`]; experiment E9 validates
//! that closed form against this cycle-level model and demonstrates
//! deadlock freedom under adversarial traffic.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod network;
pub mod packet;
pub mod router;
pub mod vc;

pub use network::{CycleNoc, Delivery, NocConfig, NocStats};
pub use packet::{Flit, FlitKind, PacketId, PacketInfo};
pub use vc::VirtualChannel;
