//! The full cycle-level mesh: injection, per-cycle flit movement,
//! credit-based flow control, delivery collection, statistics.

use crate::packet::{Flit, PacketId, PacketInfo};
use crate::router::{xy_output, Port, Router};
use crate::vc::VirtualChannel;
use em2_model::{ceil_div, CoreId, Mesh, Summary};
use std::collections::VecDeque;

/// Configuration of the cycle-level NoC.
#[derive(Clone, Copy, Debug)]
pub struct NocConfig {
    /// Mesh geometry.
    pub mesh: Mesh,
    /// Link (flit) width in bits.
    pub link_width_bits: u64,
    /// Per-packet header bits (consumes flit capacity).
    pub header_bits: u64,
    /// Input buffer depth per (port, VC), in flits.
    pub buf_depth: usize,
}

impl Default for NocConfig {
    /// 8×8 mesh, 128-bit links, 4-flit buffers (matches the default
    /// [`em2_model::CostModel`] geometry).
    fn default() -> Self {
        NocConfig {
            mesh: Mesh::new(8, 8),
            link_width_bits: 128,
            header_bits: 32,
            buf_depth: 4,
        }
    }
}

impl NocConfig {
    /// Flits for a payload (same formula as the analytical model).
    pub fn flits(&self, payload_bits: u64) -> u64 {
        ceil_div(payload_bits + self.header_bits, self.link_width_bits).max(1)
    }
}

/// A delivered packet.
#[derive(Clone, Copy, Debug)]
pub struct Delivery {
    /// The packet's metadata.
    pub info: PacketInfo,
    /// Cycle at which the tail flit ejected.
    pub delivered_at: u64,
}

impl Delivery {
    /// End-to-end packet latency in cycles.
    pub fn latency(&self) -> u64 {
        self.delivered_at - self.info.injected_at
    }
}

/// Aggregate network statistics.
#[derive(Clone, Debug, Default)]
pub struct NocStats {
    /// Packets injected.
    pub injected: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Total flit-hops (router→router link traversals).
    pub flit_hops: u64,
    /// Per-VC delivered packet counts.
    pub per_vc_delivered: [u64; VirtualChannel::COUNT],
    /// Per-VC flit-hops.
    pub per_vc_flit_hops: [u64; VirtualChannel::COUNT],
    /// Packet latency summary.
    pub latency: Summary,
}

/// The cycle-level mesh network.
pub struct CycleNoc {
    cfg: NocConfig,
    routers: Vec<Router>,
    /// Unbounded per-core per-VC injection queues (outside the network;
    /// sources stalled on full buffers cannot deadlock the fabric).
    inject_q: Vec<Vec<VecDeque<Flit>>>,
    /// Credits this router's output port has toward the downstream
    /// input buffer: `[router][port][vc]`.
    credits: Vec<Vec<Vec<usize>>>,
    /// Flits placed on links this cycle: (dst_router, dst_port, flit).
    in_transit: Vec<(usize, Port, Flit)>,
    /// Per-core injection round-robin pointer (fair across VCs).
    inj_rr: Vec<usize>,
    /// Sliding-window slab of packet metadata: `PacketId` ids are
    /// assigned sequentially, entry `id` lives at `id - packets_base`,
    /// and fully-delivered slots are popped off the front — so lookups
    /// are plain array indexing (no hashing on the per-flit ejection
    /// path) and memory is bounded by the maximum in-flight span, not
    /// the total ever injected.
    packets: VecDeque<Option<PacketInfo>>,
    packets_base: u64,
    in_flight: usize,
    deliveries: Vec<Delivery>,
    stats: NocStats,
    next_packet: u64,
    cycle: u64,
}

impl CycleNoc {
    /// Build an idle network.
    pub fn new(cfg: NocConfig) -> Self {
        assert!(cfg.buf_depth >= 1, "need at least one buffer slot");
        let n = cfg.mesh.cores();
        CycleNoc {
            routers: (0..n).map(|_| Router::new()).collect(),
            inject_q: (0..n)
                .map(|_| {
                    (0..VirtualChannel::COUNT)
                        .map(|_| VecDeque::new())
                        .collect()
                })
                .collect(),
            credits: (0..n)
                .map(|_| vec![vec![cfg.buf_depth; VirtualChannel::COUNT]; Port::COUNT])
                .collect(),
            in_transit: Vec::new(),
            inj_rr: vec![0; n],
            packets: VecDeque::new(),
            packets_base: 0,
            in_flight: 0,
            deliveries: Vec::new(),
            stats: NocStats::default(),
            next_packet: 0,
            cycle: 0,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Inject a packet; it begins moving on the next [`CycleNoc::step`].
    pub fn inject(
        &mut self,
        src: CoreId,
        dst: CoreId,
        vc: VirtualChannel,
        payload_bits: u64,
    ) -> PacketId {
        let id = PacketId(self.next_packet);
        self.next_packet += 1;
        let info = PacketInfo {
            id,
            src,
            dst,
            vc,
            payload_bits,
            flits: self.cfg.flits(payload_bits),
            injected_at: self.cycle,
        };
        for kind in info.flit_kinds() {
            self.inject_q[src.index()][vc.index()].push_back(Flit {
                packet: id,
                kind,
                dst,
                vc,
            });
        }
        debug_assert_eq!(self.packets_base + self.packets.len() as u64, id.0);
        self.packets.push_back(Some(info));
        self.in_flight += 1;
        self.stats.injected += 1;
        id
    }

    /// Neighbour router index in the given direction.
    fn neighbor(&self, router: usize, port: Port) -> usize {
        let (x, y) = self.cfg.mesh.coords(CoreId::from(router));
        let c = match port {
            Port::North => self.cfg.mesh.at(x, y - 1),
            Port::South => self.cfg.mesh.at(x, y + 1),
            Port::East => self.cfg.mesh.at(x + 1, y),
            Port::West => self.cfg.mesh.at(x - 1, y),
            Port::Local => CoreId::from(router),
        };
        c.index()
    }

    /// Advance the network one cycle.
    pub fn step(&mut self) {
        self.cycle += 1;
        let n = self.routers.len();

        // ---- Switch allocation & traversal -------------------------
        // Each output port forwards at most one flit per cycle; VCs
        // arbitrate round-robin for the physical link, wormhole locks
        // keep packets contiguous per VC.
        for r in 0..n {
            for out_port in Port::ALL {
                // Build candidate list: (input port, vc) whose head flit
                // wants this output and may move.
                let mut chosen: Option<(Port, VirtualChannel)> = None;
                let rr0 = self.routers[r].rr[out_port.index()];
                for k in 0..VirtualChannel::COUNT {
                    let vc = VirtualChannel::ALL[(rr0 + k) % VirtualChannel::COUNT];
                    // Credit check (local ejection is an infinite sink).
                    if out_port != Port::Local && self.credits[r][out_port.index()][vc.index()] == 0
                    {
                        continue;
                    }
                    if let Some(locked_in) = self.routers[r].out_lock[out_port.index()][vc.index()]
                    {
                        // Continue the current wormhole if its next flit
                        // is waiting.
                        let q = &self.routers[r].in_buf[locked_in.index()][vc.index()];
                        if !q.is_empty() {
                            chosen = Some((locked_in, vc));
                            break;
                        }
                        continue;
                    }
                    // No lock: look for a head flit routed here, round-
                    // robin over input ports.
                    let in0 = (rr0 + k) % Port::COUNT;
                    for j in 0..Port::COUNT {
                        let in_port = Port::from_index((in0 + j) % Port::COUNT);
                        let q = &self.routers[r].in_buf[in_port.index()][vc.index()];
                        if let Some(head) = q.front() {
                            if head.kind.is_head()
                                && xy_output(&self.cfg.mesh, CoreId::from(r), head.dst) == out_port
                            {
                                chosen = Some((in_port, vc));
                                break;
                            }
                        }
                    }
                    if chosen.is_some() {
                        break;
                    }
                }

                let Some((in_port, vc)) = chosen else {
                    continue;
                };
                let flit = self.routers[r].in_buf[in_port.index()][vc.index()]
                    .pop_front()
                    .expect("candidate had a flit");
                // Update wormhole lock.
                let lock = &mut self.routers[r].out_lock[out_port.index()][vc.index()];
                if flit.kind.is_tail() {
                    *lock = None;
                } else {
                    *lock = Some(in_port);
                }
                self.routers[r].rr[out_port.index()] =
                    (self.routers[r].rr[out_port.index()] + 1) % VirtualChannel::COUNT;

                // Return a credit upstream for the freed buffer slot.
                if in_port != Port::Local {
                    let up = self.neighbor(r, in_port);
                    let up_out = in_port.opposite();
                    self.credits[up][up_out.index()][vc.index()] += 1;
                    debug_assert!(
                        self.credits[up][up_out.index()][vc.index()] <= self.cfg.buf_depth
                    );
                }

                if out_port == Port::Local {
                    // Ejection: deliver on tail.
                    if flit.kind.is_tail() {
                        let slot = (flit.packet.0 - self.packets_base) as usize;
                        let info = self.packets[slot].take().expect("known packet");
                        while matches!(self.packets.front(), Some(None)) {
                            self.packets.pop_front();
                            self.packets_base += 1;
                        }
                        self.in_flight -= 1;
                        self.stats.delivered += 1;
                        self.stats.per_vc_delivered[vc.index()] += 1;
                        let d = Delivery {
                            info,
                            delivered_at: self.cycle,
                        };
                        self.stats.latency.record_u64(d.latency());
                        self.deliveries.push(d);
                    }
                } else {
                    // Link traversal: arrives downstream at end of cycle.
                    self.credits[r][out_port.index()][vc.index()] -= 1;
                    let down = self.neighbor(r, out_port);
                    self.in_transit.push((down, out_port.opposite(), flit));
                    self.stats.flit_hops += 1;
                    self.stats.per_vc_flit_hops[vc.index()] += 1;
                }
            }
        }

        // ---- Injection ---------------------------------------------
        // One flit per core per cycle may enter the local input port,
        // VCs round-robin, subject to buffer space.
        for r in 0..n {
            let rr = self.inj_rr[r];
            for k in 0..VirtualChannel::COUNT {
                let vc = VirtualChannel::ALL[(rr + k) % VirtualChannel::COUNT];
                let buf_len = self.routers[r].in_buf[Port::Local.index()][vc.index()].len();
                if buf_len >= self.cfg.buf_depth {
                    continue;
                }
                if let Some(flit) = self.inject_q[r][vc.index()].pop_front() {
                    self.routers[r].in_buf[Port::Local.index()][vc.index()].push_back(flit);
                    // Advance past the VC we just served so other
                    // classes are never starved by a long stream.
                    self.inj_rr[r] = (rr + k + 1) % VirtualChannel::COUNT;
                    break;
                }
            }
        }

        // ---- Link delivery -----------------------------------------
        for (router, port, flit) in self.in_transit.drain(..) {
            let q = &mut self.routers[router].in_buf[port.index()][flit.vc.index()];
            debug_assert!(q.len() < self.cfg.buf_depth, "credit protocol violated");
            q.push_back(flit);
        }
    }

    /// Take the deliveries accumulated since the last call.
    pub fn take_deliveries(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.deliveries)
    }

    /// Packets injected but not yet delivered.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// True when no flit is buffered, queued, or on a link.
    pub fn is_idle(&self) -> bool {
        self.in_flight == 0
            && self
                .inject_q
                .iter()
                .all(|qs| qs.iter().all(|q| q.is_empty()))
            && self.routers.iter().all(|r| r.buffered() == 0)
    }

    /// Step until idle; returns the cycle count consumed, or `None` if
    /// `max_cycles` elapsed first (a deadlock/livelock tripwire).
    pub fn run_until_idle(&mut self, max_cycles: u64) -> Option<u64> {
        let start = self.cycle;
        while !self.is_idle() {
            if self.cycle - start >= max_cycles {
                return None;
            }
            self.step();
        }
        Some(self.cycle - start)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noc() -> CycleNoc {
        CycleNoc::new(NocConfig {
            mesh: Mesh::new(4, 4),
            ..NocConfig::default()
        })
    }

    #[test]
    fn single_packet_delivers_with_expected_latency() {
        let mut n = noc();
        let src = n.cfg.mesh.at(0, 0);
        let dst = n.cfg.mesh.at(3, 0); // 3 hops
        n.inject(src, dst, VirtualChannel::Migration, 64); // 1 flit
        let spent = n.run_until_idle(1000).expect("no deadlock");
        let d = n.take_deliveries();
        assert_eq!(d.len(), 1);
        // 1 cycle injection + (hops+1) router traversals.
        assert_eq!(d[0].latency(), 1 + 3 + 1);
        assert_eq!(spent, d[0].latency());
        assert_eq!(n.stats().flit_hops, 3);
    }

    #[test]
    fn self_packet_delivers() {
        let mut n = noc();
        let c = n.cfg.mesh.at(1, 1);
        n.inject(c, c, VirtualChannel::RemoteReq, 32);
        assert!(n.run_until_idle(100).is_some());
        let d = n.take_deliveries();
        assert_eq!(d.len(), 1);
        assert_eq!(n.stats().flit_hops, 0, "self delivery uses no links");
    }

    #[test]
    fn multi_flit_serialization_adds_latency() {
        let mut n = noc();
        let src = n.cfg.mesh.at(0, 0);
        let dst = n.cfg.mesh.at(2, 0);
        // 1120-bit context + 32 header = 9 flits at 128 bits.
        n.inject(src, dst, VirtualChannel::Migration, 1120);
        n.run_until_idle(1000).unwrap();
        let d = n.take_deliveries();
        assert_eq!(d[0].info.flits, 9);
        // head: 1 + (2+1); tail trails by flits-1 more cycles.
        assert_eq!(d[0].latency(), 1 + 3 + 8);
        assert_eq!(n.stats().flit_hops, 9 * 2);
    }

    #[test]
    fn wormhole_keeps_packets_contiguous_per_vc() {
        let mut n = noc();
        let src = n.cfg.mesh.at(0, 0);
        let dst = n.cfg.mesh.at(3, 3);
        // Two big packets on the same VC, same route.
        n.inject(src, dst, VirtualChannel::Migration, 1000);
        n.inject(src, dst, VirtualChannel::Migration, 1000);
        n.run_until_idle(10_000).unwrap();
        let d = n.take_deliveries();
        assert_eq!(d.len(), 2);
        // Second packet must finish after the first (FIFO per VC).
        assert!(d[1].delivered_at > d[0].delivered_at);
    }

    #[test]
    fn different_vcs_interleave_without_blocking() {
        let mut n = noc();
        let src = n.cfg.mesh.at(0, 0);
        let dst = n.cfg.mesh.at(3, 0);
        // A long migration packet and a short RA request share the path.
        n.inject(src, dst, VirtualChannel::Migration, 4096);
        n.inject(src, dst, VirtualChannel::RemoteReq, 32);
        n.run_until_idle(10_000).unwrap();
        let d = n.take_deliveries();
        let ra = d
            .iter()
            .find(|d| d.info.vc == VirtualChannel::RemoteReq)
            .unwrap();
        let mig = d
            .iter()
            .find(|d| d.info.vc == VirtualChannel::Migration)
            .unwrap();
        assert!(
            ra.delivered_at < mig.delivered_at,
            "small RA packet must not wait behind the big migration on another VC"
        );
    }

    #[test]
    fn all_to_all_storm_drains_without_deadlock() {
        let mut n = noc();
        let cores: Vec<CoreId> = n.cfg.mesh.iter().collect();
        for &s in &cores {
            for &d in &cores {
                if s != d {
                    n.inject(s, d, VirtualChannel::Migration, 1120);
                    n.inject(s, d, VirtualChannel::RemoteReq, 96);
                }
            }
        }
        let injected = n.stats().injected;
        assert!(
            n.run_until_idle(2_000_000).is_some(),
            "all-to-all storm deadlocked"
        );
        assert_eq!(n.stats().delivered, injected);
    }

    #[test]
    fn no_loss_no_duplication() {
        let mut n = noc();
        let m = n.cfg.mesh;
        let mut expected = Vec::new();
        for i in 0..16u64 {
            let src = CoreId::from((i % 16) as usize);
            let dst = CoreId::from(((i * 7 + 3) % 16) as usize);
            let id = n.inject(src, dst, VirtualChannel::CohReq, 64 + i * 8);
            expected.push((id, dst));
        }
        n.run_until_idle(100_000).unwrap();
        let mut got: Vec<PacketId> = n.take_deliveries().iter().map(|d| d.info.id).collect();
        got.sort();
        let mut want: Vec<PacketId> = expected.iter().map(|&(id, _)| id).collect();
        want.sort();
        assert_eq!(got, want);
        let _ = m;
    }

    #[test]
    fn per_vc_stats_accounted() {
        let mut n = noc();
        let a = n.cfg.mesh.at(0, 0);
        let b = n.cfg.mesh.at(1, 0);
        n.inject(a, b, VirtualChannel::Eviction, 64);
        n.inject(a, b, VirtualChannel::RemoteResp, 64);
        n.run_until_idle(1000).unwrap();
        let s = n.stats();
        assert_eq!(s.per_vc_delivered[VirtualChannel::Eviction.index()], 1);
        assert_eq!(s.per_vc_delivered[VirtualChannel::RemoteResp.index()], 1);
        assert_eq!(s.per_vc_delivered[VirtualChannel::Migration.index()], 0);
        assert_eq!(s.per_vc_flit_hops[VirtualChannel::Eviction.index()], 1);
    }

    #[test]
    fn latency_grows_with_distance() {
        let mut lat = Vec::new();
        for hops in [1u16, 3, 6] {
            let mut n = noc();
            let src = n.cfg.mesh.at(0, 0);
            let dst = n.cfg.mesh.at(hops.min(3), hops.saturating_sub(3));
            n.inject(src, dst, VirtualChannel::Migration, 64);
            n.run_until_idle(1000).unwrap();
            lat.push(n.take_deliveries()[0].latency());
        }
        assert!(lat[0] < lat[1] && lat[1] < lat[2], "{lat:?}");
    }

    #[test]
    fn is_idle_reports_correctly() {
        let mut n = noc();
        assert!(n.is_idle());
        n.inject(
            n.cfg.mesh.at(0, 0),
            n.cfg.mesh.at(1, 1),
            VirtualChannel::Migration,
            64,
        );
        assert!(!n.is_idle());
        n.run_until_idle(1000).unwrap();
        assert!(n.is_idle());
    }
}
