//! The six virtual channels of the EM²-RA interconnect.

use std::fmt;

/// Traffic classes, each with its own virtual subnetwork.
///
/// The paper's deadlock-freedom argument (§2–§3, citing Cho et al.
/// \[10\]) requires:
///
/// * migrations and **evictions** on separate virtual networks — an
///   incoming migration may trigger an eviction, so eviction traffic
///   must never wait behind migration traffic (`Migration` ≺
///   `Eviction` in the dependency order, and evictions terminate at
///   the always-available native context);
/// * the **remote-access** subnetwork separate from both (a remote
///   request allocates a response; responses sink unconditionally), so
///   EM²-RA "requir\[es\] six virtual channels in total" once the
///   baseline cache/coherence request–response pair is counted.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum VirtualChannel {
    /// Thread migrations toward a home core (guest-bound).
    Migration = 0,
    /// Evicted threads travelling to their native context.
    Eviction = 1,
    /// Remote-cache-access requests (EM²-RA, Figure 3).
    RemoteReq = 2,
    /// Remote-cache-access responses (data or ack).
    RemoteResp = 3,
    /// Off-chip / coherence-protocol requests (baseline traffic).
    CohReq = 4,
    /// Off-chip / coherence-protocol responses.
    CohResp = 5,
}

impl VirtualChannel {
    /// Number of virtual channels (the paper's "six in total").
    pub const COUNT: usize = 6;

    /// All channels, in index order.
    pub const ALL: [VirtualChannel; Self::COUNT] = [
        VirtualChannel::Migration,
        VirtualChannel::Eviction,
        VirtualChannel::RemoteReq,
        VirtualChannel::RemoteResp,
        VirtualChannel::CohReq,
        VirtualChannel::CohResp,
    ];

    /// Index of this channel in per-VC tables.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Whether this class is a *response/sink* class: packets on it are
    /// always consumed on arrival without allocating further network
    /// resources — the termination condition of the deadlock argument.
    pub const fn is_sink_class(self) -> bool {
        matches!(
            self,
            VirtualChannel::Eviction | VirtualChannel::RemoteResp | VirtualChannel::CohResp
        )
    }
}

impl fmt::Display for VirtualChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VirtualChannel::Migration => "mig",
            VirtualChannel::Eviction => "evict",
            VirtualChannel::RemoteReq => "ra-req",
            VirtualChannel::RemoteResp => "ra-resp",
            VirtualChannel::CohReq => "coh-req",
            VirtualChannel::CohResp => "coh-resp",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_channels_as_in_the_paper() {
        assert_eq!(VirtualChannel::COUNT, 6);
        assert_eq!(VirtualChannel::ALL.len(), 6);
    }

    #[test]
    fn indices_are_dense() {
        for (i, vc) in VirtualChannel::ALL.iter().enumerate() {
            assert_eq!(vc.index(), i);
        }
    }

    #[test]
    fn sink_classes() {
        assert!(VirtualChannel::Eviction.is_sink_class());
        assert!(VirtualChannel::RemoteResp.is_sink_class());
        assert!(VirtualChannel::CohResp.is_sink_class());
        assert!(!VirtualChannel::Migration.is_sink_class());
        assert!(!VirtualChannel::RemoteReq.is_sink_class());
        assert!(!VirtualChannel::CohReq.is_sink_class());
    }

    #[test]
    fn display_names() {
        assert_eq!(VirtualChannel::Migration.to_string(), "mig");
        assert_eq!(VirtualChannel::RemoteResp.to_string(), "ra-resp");
    }
}
