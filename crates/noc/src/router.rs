//! The input-buffered wormhole router.
//!
//! Five ports (local + 4 mesh directions), per-port-per-VC FIFO input
//! buffers, X-Y dimension-ordered route computation, per-output-VC
//! wormhole locks, and round-robin arbitration for the physical link.
//! Credit-based flow control is coordinated by
//! [`crate::network::CycleNoc`], which owns the inter-router links.

use crate::packet::Flit;
use crate::vc::VirtualChannel;
use em2_model::{CoreId, Mesh};
use std::collections::VecDeque;

/// Router port directions. `Local` is the core-side inject/eject port.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum Port {
    /// Core-side injection/ejection.
    Local = 0,
    /// Toward smaller y.
    North = 1,
    /// Toward larger x.
    East = 2,
    /// Toward larger y.
    South = 3,
    /// Toward smaller x.
    West = 4,
}

impl Port {
    /// Number of ports.
    pub const COUNT: usize = 5;

    /// All ports in index order.
    pub const ALL: [Port; Port::COUNT] = [
        Port::Local,
        Port::North,
        Port::East,
        Port::South,
        Port::West,
    ];

    /// The port on the neighbouring router that a link from this
    /// output enters.
    pub const fn opposite(self) -> Port {
        match self {
            Port::Local => Port::Local,
            Port::North => Port::South,
            Port::East => Port::West,
            Port::South => Port::North,
            Port::West => Port::East,
        }
    }

    /// Index for table lookup.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Port from index.
    pub const fn from_index(i: usize) -> Port {
        match i {
            0 => Port::Local,
            1 => Port::North,
            2 => Port::East,
            3 => Port::South,
            4 => Port::West,
            _ => panic!("port index out of range"),
        }
    }
}

/// X-Y dimension-ordered routing: correct x first, then y. Returns the
/// output port at router `here` for a packet bound to `dst`.
pub fn xy_output(mesh: &Mesh, here: CoreId, dst: CoreId) -> Port {
    let (hx, hy) = mesh.coords(here);
    let (dx, dy) = mesh.coords(dst);
    if dx > hx {
        Port::East
    } else if dx < hx {
        Port::West
    } else if dy > hy {
        Port::South
    } else if dy < hy {
        Port::North
    } else {
        Port::Local
    }
}

/// Per-router state: input buffers, wormhole locks, arbitration
/// pointers.
pub struct Router {
    /// Input FIFOs: `[port][vc]`.
    pub in_buf: Vec<Vec<VecDeque<Flit>>>,
    /// Wormhole ownership of each output VC: `[port][vc] -> input port`
    /// currently forwarding a packet on that output VC.
    pub out_lock: Vec<Vec<Option<Port>>>,
    /// Round-robin arbitration pointer per output port.
    pub rr: Vec<usize>,
}

impl Router {
    /// A router with empty buffers.
    pub fn new() -> Self {
        Router {
            in_buf: (0..Port::COUNT)
                .map(|_| {
                    (0..VirtualChannel::COUNT)
                        .map(|_| VecDeque::new())
                        .collect()
                })
                .collect(),
            out_lock: vec![vec![None; VirtualChannel::COUNT]; Port::COUNT],
            rr: vec![0; Port::COUNT],
        }
    }

    /// Total buffered flits (for idle detection).
    pub fn buffered(&self) -> usize {
        self.in_buf
            .iter()
            .flat_map(|p| p.iter())
            .map(|q| q.len())
            .sum()
    }

    /// Buffered flits on one input `(port, vc)`.
    pub fn queue_len(&self, port: Port, vc: VirtualChannel) -> usize {
        self.in_buf[port.index()][vc.index()].len()
    }
}

impl Default for Router {
    fn default() -> Self {
        Router::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposites() {
        assert_eq!(Port::North.opposite(), Port::South);
        assert_eq!(Port::East.opposite(), Port::West);
        assert_eq!(Port::South.opposite(), Port::North);
        assert_eq!(Port::West.opposite(), Port::East);
        assert_eq!(Port::Local.opposite(), Port::Local);
    }

    #[test]
    fn port_round_trip() {
        for p in Port::ALL {
            assert_eq!(Port::from_index(p.index()), p);
        }
    }

    #[test]
    fn xy_routes_x_first() {
        let m = Mesh::new(4, 4);
        // From (0,0) to (2,2): must go East first.
        assert_eq!(xy_output(&m, m.at(0, 0), m.at(2, 2)), Port::East);
        // Same column: go South.
        assert_eq!(xy_output(&m, m.at(2, 0), m.at(2, 2)), Port::South);
        // Arrived: eject.
        assert_eq!(xy_output(&m, m.at(2, 2), m.at(2, 2)), Port::Local);
        // Westward and northward.
        assert_eq!(xy_output(&m, m.at(3, 3), m.at(1, 3)), Port::West);
        assert_eq!(xy_output(&m, m.at(3, 3), m.at(3, 0)), Port::North);
    }

    #[test]
    fn xy_route_walk_terminates_at_dst() {
        let m = Mesh::new(5, 3);
        for src in m.iter() {
            for dst in m.iter() {
                let mut here = src;
                let mut steps = 0;
                loop {
                    match xy_output(&m, here, dst) {
                        Port::Local => break,
                        p => {
                            let (x, y) = m.coords(here);
                            here = match p {
                                Port::North => m.at(x, y - 1),
                                Port::South => m.at(x, y + 1),
                                Port::East => m.at(x + 1, y),
                                Port::West => m.at(x - 1, y),
                                Port::Local => unreachable!(),
                            };
                            steps += 1;
                            assert!(steps <= m.hops(src, dst), "non-minimal route");
                        }
                    }
                }
                assert_eq!(here, dst);
                assert_eq!(steps, m.hops(src, dst));
            }
        }
    }

    #[test]
    fn fresh_router_is_empty() {
        let r = Router::new();
        assert_eq!(r.buffered(), 0);
        assert_eq!(r.queue_len(Port::Local, VirtualChannel::Migration), 0);
    }
}
