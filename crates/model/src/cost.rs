//! The closed-form network cost model.
//!
//! Both the event-driven simulator (its default, Graphite-style timing
//! mode) and the paper's §3 dynamic program price network operations
//! with the *same* closed form, so the DP's "optimal" is a genuine
//! lower bound on what any decision scheme can achieve in simulation:
//!
//! * **migration** of a `b`-bit execution context from `src` to `dst`:
//!   `hops·hop_latency + ⌈(b + header)/link_width⌉ + migration_fixed`
//!   — one-way; the thread rides along with its context (paper §2:
//!   "a one-way migration protocol");
//! * **remote access** from `src` to the home core and back:
//!   `2·hops·hop_latency + ⌈(req+header)/w⌉ + ⌈(resp+header)/w⌉ + ra_fixed`
//!   — a round trip carrying one word of data at most (paper §3);
//! * **local costs** (L1/L2 hit, DRAM) are used by the simulator but
//!   deliberately *ignored* by the DP, exactly as the paper's
//!   simplified model prescribes ("ignores local memory access delays,
//!   since the migration-vs-RA decision mainly affects network
//!   delays").

use crate::ceil_div;
use crate::ids::{AccessKind, CoreId};
use crate::mesh::Mesh;

/// Architectural register-file shape, used to derive the default
/// migrated context size.
///
/// The paper quotes 1–2 Kbits for a 32-bit Atom-like core: a 32-entry
/// 32-bit register file plus PC and a little control state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContextSpec {
    /// Number of general-purpose registers.
    pub registers: u32,
    /// Width of each register in bits.
    pub register_bits: u32,
    /// Program-counter width in bits.
    pub pc_bits: u32,
    /// Additional architectural state (status flags, TLB tags, ...).
    pub extra_bits: u32,
}

impl ContextSpec {
    /// A 32-bit Atom-like core: 32 × 32-bit registers + 32-bit PC +
    /// 64 bits of control state = 1120 bits, inside the paper's
    /// 1–2 Kbit range.
    pub const ATOM32: ContextSpec = ContextSpec {
        registers: 32,
        register_bits: 32,
        pc_bits: 32,
        extra_bits: 64,
    };

    /// Total context size in bits.
    #[inline]
    pub const fn bits(&self) -> u64 {
        self.registers as u64 * self.register_bits as u64
            + self.pc_bits as u64
            + self.extra_bits as u64
    }
}

impl Default for ContextSpec {
    fn default() -> Self {
        ContextSpec::ATOM32
    }
}

/// The network + memory cost model shared by every component in the
/// workspace. All latencies are in core clock cycles.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Mesh geometry (gives hop counts).
    pub mesh: Mesh,
    /// Per-hop router+link traversal latency, cycles.
    pub hop_latency: u64,
    /// Link width in bits per cycle (flit width).
    pub link_width_bits: u64,
    /// Per-packet header overhead in bits (route, type, thread id).
    pub header_bits: u64,
    /// Fixed cost of a migration: pipeline drain at the source plus
    /// context load at the destination.
    pub migration_fixed: u64,
    /// Fixed cost of a remote access (issue + commit at both ends).
    pub ra_fixed: u64,
    /// Payload bits of a remote-access request (address + opcode
    /// [+ store data for writes]).
    pub ra_req_bits: u64,
    /// Extra payload bits a write request carries (the store data).
    pub ra_write_data_bits: u64,
    /// Payload bits of a remote read response (the loaded word).
    pub ra_resp_read_bits: u64,
    /// Payload bits of a remote write acknowledgement.
    pub ra_resp_ack_bits: u64,
    /// Default migrated context size in bits (register-machine EM²).
    pub context_bits: u64,
    /// L1 data-cache hit latency.
    pub l1_hit_latency: u64,
    /// L2 data-cache hit latency (after an L1 miss).
    pub l2_hit_latency: u64,
    /// Off-chip DRAM access latency (after an L2 miss).
    pub dram_latency: u64,
}

impl Default for CostModel {
    /// 64-core 8×8 mesh with the paper's Figure-2 configuration flavor.
    fn default() -> Self {
        CostModelBuilder::new().build()
    }
}

impl CostModel {
    /// Builder with defaults matching the paper's 64-core setup.
    pub fn builder() -> CostModelBuilder {
        CostModelBuilder::new()
    }

    /// Number of cores in the modeled machine.
    #[inline]
    pub fn cores(&self) -> usize {
        self.mesh.cores()
    }

    /// Manhattan hop count between two cores.
    #[inline]
    pub fn hops(&self, a: CoreId, b: CoreId) -> u64 {
        self.mesh.hops(a, b)
    }

    /// Number of flits needed to carry `payload_bits` (+ header).
    #[inline]
    pub fn flits(&self, payload_bits: u64) -> u64 {
        ceil_div(payload_bits + self.header_bits, self.link_width_bits).max(1)
    }

    /// One-way latency of a packet with `payload_bits` from `src` to
    /// `dst`: per-hop routing plus serialization of the whole packet.
    ///
    /// Serialization is paid once (wormhole pipelining): the tail flit
    /// arrives `flits - 1` cycles after the head.
    #[inline]
    pub fn one_way(&self, src: CoreId, dst: CoreId, payload_bits: u64) -> u64 {
        self.hops(src, dst) * self.hop_latency + (self.flits(payload_bits) - 1)
    }

    /// Latency of migrating a context of `context_bits` from `src` to
    /// `dst` (paper §2). Zero if `src == dst` (no migration happens).
    #[inline]
    pub fn migration_latency_bits(&self, src: CoreId, dst: CoreId, context_bits: u64) -> u64 {
        if src == dst {
            return 0;
        }
        self.one_way(src, dst, context_bits) + self.migration_fixed
    }

    /// Migration latency using the model's default context size.
    #[inline]
    pub fn migration_latency(&self, src: CoreId, dst: CoreId) -> u64 {
        self.migration_latency_bits(src, dst, self.context_bits)
    }

    /// Round-trip latency of a remote cache access from `src` to the
    /// line's `home` core (paper §3, Figure 3). Zero if already home.
    #[inline]
    pub fn remote_access_latency(&self, src: CoreId, home: CoreId, kind: AccessKind) -> u64 {
        if src == home {
            return 0;
        }
        let (req_bits, resp_bits) = match kind {
            AccessKind::Read => (self.ra_req_bits, self.ra_resp_read_bits),
            AccessKind::Write => (
                self.ra_req_bits + self.ra_write_data_bits,
                self.ra_resp_ack_bits,
            ),
        };
        self.one_way(src, home, req_bits) + self.one_way(home, src, resp_bits) + self.ra_fixed
    }

    /// Network traffic of a migration, in flit-hops (an energy proxy:
    /// each flit traversing each link costs roughly constant energy).
    #[inline]
    pub fn migration_traffic_bits(&self, src: CoreId, dst: CoreId, context_bits: u64) -> u64 {
        if src == dst {
            return 0;
        }
        self.hops(src, dst) * self.flits(context_bits)
    }

    /// Network traffic of a remote access round trip, in flit-hops.
    #[inline]
    pub fn remote_access_traffic(&self, src: CoreId, home: CoreId, kind: AccessKind) -> u64 {
        if src == home {
            return 0;
        }
        let (req_bits, resp_bits) = match kind {
            AccessKind::Read => (self.ra_req_bits, self.ra_resp_read_bits),
            AccessKind::Write => (
                self.ra_req_bits + self.ra_write_data_bits,
                self.ra_resp_ack_bits,
            ),
        };
        self.hops(src, home) * (self.flits(req_bits) + self.flits(resp_bits))
    }
}

/// Fluent builder for [`CostModel`].
///
/// ```
/// use em2_model::CostModel;
///
/// let cm = CostModel::builder()
///     .cores(64)
///     .hop_latency(2)
///     .link_width_bits(128)
///     .build();
/// assert_eq!(cm.cores(), 64);
/// ```
#[derive(Clone, Debug)]
pub struct CostModelBuilder {
    mesh: Mesh,
    hop_latency: u64,
    link_width_bits: u64,
    header_bits: u64,
    migration_fixed: u64,
    ra_fixed: u64,
    ra_req_bits: u64,
    ra_write_data_bits: u64,
    ra_resp_read_bits: u64,
    ra_resp_ack_bits: u64,
    context_bits: u64,
    l1_hit_latency: u64,
    l2_hit_latency: u64,
    dram_latency: u64,
}

impl Default for CostModelBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CostModelBuilder {
    /// Start from the paper-flavored 64-core defaults.
    pub fn new() -> Self {
        CostModelBuilder {
            mesh: Mesh::new(8, 8),
            hop_latency: 2,
            link_width_bits: 128,
            header_bits: 32,
            migration_fixed: 8,
            ra_fixed: 2,
            ra_req_bits: 64 + 8,    // address + opcode
            ra_write_data_bits: 32, // one 32-bit word
            ra_resp_read_bits: 32,  // one 32-bit word
            ra_resp_ack_bits: 8,
            context_bits: ContextSpec::ATOM32.bits(),
            l1_hit_latency: 2,
            l2_hit_latency: 8,
            dram_latency: 100,
        }
    }

    /// Set the mesh explicitly.
    pub fn mesh(mut self, mesh: Mesh) -> Self {
        self.mesh = mesh;
        self
    }

    /// Set the core count; uses the smallest near-square mesh.
    pub fn cores(mut self, cores: usize) -> Self {
        self.mesh = Mesh::square_for(cores);
        self
    }

    /// Per-hop latency in cycles.
    pub fn hop_latency(mut self, v: u64) -> Self {
        self.hop_latency = v;
        self
    }

    /// Link (flit) width in bits.
    pub fn link_width_bits(mut self, v: u64) -> Self {
        assert!(v > 0, "link width must be positive");
        self.link_width_bits = v;
        self
    }

    /// Per-packet header bits.
    pub fn header_bits(mut self, v: u64) -> Self {
        self.header_bits = v;
        self
    }

    /// Fixed migration overhead (pipeline drain + context load).
    pub fn migration_fixed(mut self, v: u64) -> Self {
        self.migration_fixed = v;
        self
    }

    /// Fixed remote-access overhead.
    pub fn ra_fixed(mut self, v: u64) -> Self {
        self.ra_fixed = v;
        self
    }

    /// Migrated context size in bits (register-machine EM²).
    pub fn context_bits(mut self, v: u64) -> Self {
        assert!(v > 0, "context must carry at least the PC");
        self.context_bits = v;
        self
    }

    /// Derive the context size from an architectural spec.
    pub fn context_spec(mut self, spec: ContextSpec) -> Self {
        self.context_bits = spec.bits();
        self
    }

    /// L1 hit latency in cycles.
    pub fn l1_hit_latency(mut self, v: u64) -> Self {
        self.l1_hit_latency = v;
        self
    }

    /// L2 hit latency in cycles.
    pub fn l2_hit_latency(mut self, v: u64) -> Self {
        self.l2_hit_latency = v;
        self
    }

    /// DRAM latency in cycles.
    pub fn dram_latency(mut self, v: u64) -> Self {
        self.dram_latency = v;
        self
    }

    /// Finalize the model.
    pub fn build(self) -> CostModel {
        CostModel {
            mesh: self.mesh,
            hop_latency: self.hop_latency,
            link_width_bits: self.link_width_bits,
            header_bits: self.header_bits,
            migration_fixed: self.migration_fixed,
            ra_fixed: self.ra_fixed,
            ra_req_bits: self.ra_req_bits,
            ra_write_data_bits: self.ra_write_data_bits,
            ra_resp_read_bits: self.ra_resp_read_bits,
            ra_resp_ack_bits: self.ra_resp_ack_bits,
            context_bits: self.context_bits,
            l1_hit_latency: self.l1_hit_latency,
            l2_hit_latency: self.l2_hit_latency,
            dram_latency: self.dram_latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cm() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn atom32_context_is_in_papers_range() {
        let bits = ContextSpec::ATOM32.bits();
        assert!((1024..=2048).contains(&bits), "context = {bits} bits");
    }

    #[test]
    fn default_is_64_cores() {
        assert_eq!(cm().cores(), 64);
    }

    #[test]
    fn local_operations_are_free() {
        let m = cm();
        let c = CoreId(5);
        assert_eq!(m.migration_latency(c, c), 0);
        assert_eq!(m.remote_access_latency(c, c, AccessKind::Read), 0);
        assert_eq!(m.migration_traffic_bits(c, c, 1000), 0);
        assert_eq!(m.remote_access_traffic(c, c, AccessKind::Write), 0);
    }

    #[test]
    fn migration_cost_grows_with_distance_and_size() {
        let m = cm();
        let a = m.mesh.at(0, 0);
        let near = m.mesh.at(1, 0);
        let far = m.mesh.at(7, 7);
        assert!(m.migration_latency(a, near) < m.migration_latency(a, far));
        assert!(
            m.migration_latency_bits(a, far, 256) < m.migration_latency_bits(a, far, 4096),
            "bigger contexts must cost more"
        );
    }

    #[test]
    fn migration_latency_formula() {
        let m = cm();
        let a = m.mesh.at(0, 0);
        let b = m.mesh.at(3, 2); // 5 hops
        let bits = m.context_bits;
        let flits = crate::ceil_div(bits + m.header_bits, m.link_width_bits);
        assert_eq!(
            m.migration_latency(a, b),
            5 * m.hop_latency + (flits - 1) + m.migration_fixed
        );
    }

    #[test]
    fn ra_round_trip_vs_one_way_migration() {
        // For a single access at distance d, RA pays 2d small packets,
        // migration pays d but with a big packet. With the default
        // 1120-bit context and 128-bit links, migration serialization
        // is 9 flits; at distance 1 RA should be cheaper than
        // migrating there and back (2 migrations), which is the
        // Figure-2 motivation.
        let m = cm();
        let a = m.mesh.at(0, 0);
        let b = m.mesh.at(1, 0);
        let ra = m.remote_access_latency(a, b, AccessKind::Read);
        let two_migrations = 2 * m.migration_latency(a, b);
        assert!(
            ra < two_migrations,
            "RA ({ra}) should beat migrate-and-bounce ({two_migrations})"
        );
    }

    #[test]
    fn write_and_read_ra_differ_by_payload() {
        let m = cm();
        let a = m.mesh.at(0, 0);
        let b = m.mesh.at(4, 4);
        // Both fit in one flit each way with the default widths, so
        // latency is equal; traffic may differ only via flit counts.
        let r = m.remote_access_latency(a, b, AccessKind::Read);
        let w = m.remote_access_latency(a, b, AccessKind::Write);
        assert!(r > 0 && w > 0);
    }

    #[test]
    fn traffic_scales_with_hops() {
        let m = cm();
        let a = m.mesh.at(0, 0);
        let b = m.mesh.at(0, 1);
        let c = m.mesh.at(0, 7);
        let t_near = m.migration_traffic_bits(a, b, m.context_bits);
        let t_far = m.migration_traffic_bits(a, c, m.context_bits);
        assert_eq!(t_far, 7 * t_near);
    }

    #[test]
    fn flits_at_least_one() {
        let m = cm();
        assert_eq!(m.flits(0), 1);
        assert!(m.flits(10_000) > 1);
    }

    #[test]
    fn builder_round_trip() {
        let m = CostModel::builder()
            .cores(16)
            .hop_latency(3)
            .context_bits(2048)
            .build();
        let back = m;
        assert_eq!(m, back);
        assert_eq!(back.hop_latency, 3);
        assert_eq!(back.context_bits, 2048);
        assert_eq!(back.cores(), 16);
    }
}
