//! The workspace's one binary-codec kernel: little-endian writers and
//! a bounds-checked read cursor with typed errors.
//!
//! Every hand-rolled codec in the workspace — the runtime's wire
//! format (`em2_rt::wire`), the transport layer's control protocol
//! (`em2-net`), and decision-scheme state serialization
//! (`em2_core::decision`) — builds on these primitives, so "decoding
//! never panics, truncation is a typed error" is implemented exactly
//! once. Layout conventions: fixed-width **little-endian** integers,
//! one-byte tags, `u32`-length-prefixed byte strings capped at
//! [`MAX_CHUNK`].

use std::fmt;

/// Hard ceiling on any length-prefixed chunk (16 MiB): a length beyond
/// this in the input is corruption, not a payload — decoding fails
/// typed instead of attempting the allocation.
pub const MAX_CHUNK: usize = 16 << 20;

/// A malformed byte stream. Every decode failure in the workspace's
/// codecs bottoms out in one of these — never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the field at `offset` (needed `need` more
    /// bytes).
    Truncated {
        /// Byte offset of the field that could not be read.
        offset: usize,
        /// Bytes the field still needed.
        need: usize,
    },
    /// Unknown tag byte for the named discriminant.
    BadTag {
        /// Which discriminant was being decoded.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A length field exceeded [`MAX_CHUNK`].
    ChunkTooLarge {
        /// The declared length.
        len: usize,
    },
    /// Bytes left over after a complete message.
    Trailing {
        /// How many undecoded bytes remained.
        extra: usize,
    },
    /// An integrity checksum did not match — the payload was altered
    /// in flight (bit corruption, truncation that still parsed).
    Checksum {
        /// Checksum computed over the received bytes.
        got: u32,
        /// Checksum the sender declared.
        want: u32,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { offset, need } => {
                write!(f, "truncated at byte {offset}: {need} more bytes needed")
            }
            CodecError::BadTag { what, tag } => write!(f, "bad {what} tag {tag:#04x}"),
            CodecError::ChunkTooLarge { len } => {
                write!(f, "chunk length {len} exceeds the {MAX_CHUNK}-byte cap")
            }
            CodecError::Trailing { extra } => write!(f, "{extra} trailing bytes after message"),
            CodecError::Checksum { got, want } => {
                write!(
                    f,
                    "checksum mismatch: computed {got:#010x}, declared {want:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Append a `u16`, little-endian.
pub fn put_u16(b: &mut Vec<u8>, v: u16) {
    b.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u32`, little-endian.
pub fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64`, little-endian.
pub fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed byte string (`u32` length + bytes).
pub fn put_bytes(b: &mut Vec<u8>, v: &[u8]) {
    assert!(v.len() <= MAX_CHUNK, "chunk exceeds the wire cap");
    put_u32(b, v.len() as u32);
    b.extend_from_slice(v);
}

/// A bounds-checked read cursor over a byte slice.
#[derive(Debug)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                offset: self.at,
                need: n - self.remaining(),
            });
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let n = self.u32()? as usize;
        if n > MAX_CHUNK {
            return Err(CodecError::ChunkTooLarge { len: n });
        }
        Ok(self.take(n)?.to_vec())
    }

    /// Consume and return everything left (for codecs embedding a
    /// nested message as the final field).
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.at..];
        self.at = self.buf.len();
        s
    }

    /// Assert the input is fully consumed.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::Trailing {
                extra: self.remaining(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut b = Vec::new();
        b.push(7u8);
        put_u16(&mut b, 0xBEEF);
        put_u32(&mut b, 0xDEAD_BEEF);
        put_u64(&mut b, u64::MAX - 1);
        put_bytes(&mut b, &[1, 2, 3]);
        let mut r = Cursor::new(&b);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_trailing_and_oversize_are_typed() {
        let mut r = Cursor::new(&[1, 2]);
        assert_eq!(r.u32(), Err(CodecError::Truncated { offset: 0, need: 2 }));
        let mut b = Vec::new();
        put_u32(&mut b, u32::MAX);
        assert_eq!(
            Cursor::new(&b).bytes(),
            Err(CodecError::ChunkTooLarge {
                len: u32::MAX as usize
            })
        );
        let r = Cursor::new(&[0]);
        assert_eq!(r.finish(), Err(CodecError::Trailing { extra: 1 }));
    }

    #[test]
    fn rest_consumes_everything() {
        let mut r = Cursor::new(&[1, 2, 3]);
        assert_eq!(r.u8().unwrap(), 1);
        assert_eq!(r.rest(), &[2, 3]);
        assert_eq!(r.remaining(), 0);
        r.finish().unwrap();
    }

    #[test]
    fn errors_display() {
        for e in [
            CodecError::Truncated { offset: 3, need: 2 },
            CodecError::BadTag { what: "x", tag: 9 },
            CodecError::ChunkTooLarge { len: 1 << 30 },
            CodecError::Trailing { extra: 4 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
