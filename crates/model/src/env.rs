//! The one place `EM2_*` environment variables are read.
//!
//! Every knob the workspace exposes through the environment is
//! declared in [`KNOWN`] with a one-line description (DESIGN.md §12
//! renders the same list as the user-facing reference table). Reading
//! through [`raw`]/[`flag`]/[`parse`] instead of `std::env::var`
//! buys three things:
//!
//! * **typo detection** — the first read in a process scans the
//!   environment once and warns on any `EM2_*` variable that is not
//!   declared here (`EM2_RT_WORKRES=4` used to be silently ignored);
//! * **typed parsing with a loud failure mode** — a value that does
//!   not parse warns once and falls back to the default instead of
//!   being dropped on the floor;
//! * **a single registry** — new knobs are added in one place, and the
//!   debug assertion in [`raw`] keeps callers from inventing
//!   undeclared names.
//!
//! Reads are process-global and unsynchronized with writers, exactly
//! like `std::env::var`; tests that set variables for child processes
//! (the multiproc/chaos harnesses) pass them through `Command::env`
//! and are unaffected.

use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};

/// One declared `EM2_*` environment variable.
#[derive(Debug, Clone, Copy)]
pub struct VarDef {
    /// The variable name (always `EM2_`-prefixed).
    pub name: &'static str,
    /// One-line description (rendered in DESIGN.md §12).
    pub doc: &'static str,
}

/// Every `EM2_*` variable the workspace reads, with its meaning.
pub const KNOWN: &[VarDef] = &[
    VarDef {
        name: "EM2_RT_WORKERS",
        doc: "worker-thread count for the multiplexed executor (default: host parallelism)",
    },
    VarDef {
        name: "EM2_NET_CONNECT_TIMEOUT_MS",
        doc: "cluster connect budget in ms, overriding the spec's connect_timeout_ms",
    },
    VarDef {
        name: "EM2_NET_COALESCE",
        doc: "egress frame coalescing: 1 = batched flushes (default), 0 = one frame per flush",
    },
    VarDef {
        name: "EM2_OBS",
        doc: "1 = enable the observability plane (metrics registry, tracing, snapshot exporter)",
    },
    VarDef {
        name: "EM2_OBS_INTERVAL_MS",
        doc: "periodic obs snapshot cadence in ms (0 = final snapshot only; default 1000)",
    },
    VarDef {
        name: "EM2_OBS_PATH",
        doc: "obs snapshot JSONL path (appended; default em2-obs-<pid>.jsonl in the working dir)",
    },
    VarDef {
        name: "EM2_OBS_RING",
        doc: "per-shard trace ring-buffer capacity in events (default 256)",
    },
    VarDef {
        name: "EM2_OBS_DIR",
        doc: "directory for flight-recorder post-mortem JSONL dumps (default: temp dir)",
    },
    VarDef {
        name: "EM2_OBS_ATTRIB_SLOTS",
        doc: "per-shard cost-attribution matrix capacity in (thread, home) cells (default 512)",
    },
    VarDef {
        name: "EM2_BENCH_THREADS",
        doc: "sweep worker count for the em2-bench experiment harness",
    },
    VarDef {
        name: "EM2_CHAOS_SEEDS",
        doc: "number of seeded fault plans each chaos sweep test runs",
    },
    VarDef {
        name: "EM2_E12_CHILD",
        doc: "internal: marks a re-executed experiments binary as an E12 cluster child",
    },
    VarDef {
        name: "EM2_NET_MP_ROLE",
        doc: "internal: role of a multiproc-test child process",
    },
    VarDef {
        name: "EM2_NET_MP_DIR",
        doc: "internal: scratch directory of a multiproc-test child process",
    },
    VarDef {
        name: "EM2_CHAOS_KILL_ROLE",
        doc: "internal: role of a kill-recovery-test child process",
    },
    VarDef {
        name: "EM2_CHAOS_KILL_DIR",
        doc: "internal: scratch directory of a kill-recovery-test child process",
    },
    VarDef {
        name: "EM2_NET_HANDOFF_TIMEOUT_MS",
        doc: "coordinator watchdog budget per live shard handoff in ms (default 5000)",
    },
    VarDef {
        name: "EM2_NET_BOUNCE_RETRIES",
        doc: "max re-routes of an epoch-fenced frame before the run fails typed (default 16)",
    },
    VarDef {
        name: "EM2_NET_DEBUG_WEDGE",
        doc: "1 = every node prints its quiesce census to stderr when a run fails (wedge triage)",
    },
];

fn is_known(name: &str) -> bool {
    KNOWN.iter().any(|v| v.name == name)
}

/// Scan the process environment once and warn (to stderr) about any
/// `EM2_*` variable that is not declared in [`KNOWN`] — almost always
/// a typo'd knob that would otherwise be silently ignored.
pub fn warn_unknown_once() {
    static SCANNED: AtomicBool = AtomicBool::new(false);
    if SCANNED.swap(true, Ordering::Relaxed) {
        return;
    }
    for (key, _) in std::env::vars_os() {
        let Some(key) = key.to_str() else { continue };
        if key.starts_with("EM2_") && !is_known(key) {
            eprintln!(
                "warning: unknown environment variable {key} (no EM2_* knob by that name; \
                 see the EM2_* reference table in DESIGN.md §12)"
            );
        }
    }
}

/// Read a declared variable's raw value. Returns `None` when unset or
/// not valid UTF-8. The name must appear in [`KNOWN`] (debug-asserted).
pub fn raw(name: &'static str) -> Option<String> {
    debug_assert!(is_known(name), "undeclared EM2 env var {name:?}");
    warn_unknown_once();
    std::env::var(name).ok()
}

/// Read and parse a declared variable. Unset → `None`; set but
/// unparsable → warns once per read site would be noise, so it warns
/// every time (these reads happen once per process in practice) and
/// returns `None`.
pub fn parse<T: FromStr>(name: &'static str) -> Option<T> {
    let v = raw(name)?;
    match v.parse::<T>() {
        Ok(t) => Some(t),
        Err(_) => {
            eprintln!(
                "warning: {name}={v:?} does not parse as {}; ignoring it",
                std::any::type_name::<T>()
            );
            None
        }
    }
}

/// Read a declared boolean variable. `1`/`true`/`on`/`yes` → `true`,
/// `0`/`false`/`off`/`no` → `false` (case-insensitive); unset or
/// unrecognized → `None` (with a warning when set to garbage).
pub fn flag(name: &'static str) -> Option<bool> {
    let v = raw(name)?;
    match v.to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Some(true),
        "0" | "false" | "off" | "no" => Some(false),
        _ => {
            eprintln!("warning: {name}={v:?} is not a boolean (expected 0/1); ignoring it");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_known_var_is_em2_prefixed_and_documented() {
        for v in KNOWN {
            assert!(
                v.name.starts_with("EM2_"),
                "{} lacks the EM2_ prefix",
                v.name
            );
            assert!(!v.doc.is_empty(), "{} has no doc line", v.name);
        }
        let names: std::collections::HashSet<_> = KNOWN.iter().map(|v| v.name).collect();
        assert_eq!(names.len(), KNOWN.len(), "duplicate declaration");
    }

    #[test]
    fn parse_and_flag_handle_unset_vars() {
        // EM2_OBS_PATH is never set by the test harness; KNOWN-declared
        // so the debug assertion passes.
        assert_eq!(parse::<u64>("EM2_OBS_PATH"), None);
        assert_eq!(flag("EM2_OBS_PATH"), None);
    }
}
