//! Strongly-typed identifiers.
//!
//! The simulator juggles three id spaces — cores, threads, and memory
//! addresses — and mixing them up is the classic source of silent bugs
//! in architecture simulators. Each gets a newtype here.

use std::fmt;

/// Identifier of a processor core (a tile in the on-chip mesh).
///
/// Cores are numbered `0..P` in row-major order over the mesh; the
/// geometric interpretation lives in [`crate::mesh::Mesh`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u16);

impl CoreId {
    /// The numeric index as a `usize`, for indexing per-core tables.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl From<usize> for CoreId {
    fn from(v: usize) -> Self {
        debug_assert!(v <= u16::MAX as usize, "core index {v} out of range");
        CoreId(v as u16)
    }
}

/// Identifier of a hardware thread.
///
/// Under EM² each thread has a *native* core — the core it originated
/// on, which permanently reserves a native context for it (paper §2).
/// The thread→native-core mapping is owned by the workload, not by the
/// id itself.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The numeric index as a `usize`, for indexing per-thread tables.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread{}", self.0)
    }
}

impl From<usize> for ThreadId {
    fn from(v: usize) -> Self {
        debug_assert!(v <= u32::MAX as usize, "thread index {v} out of range");
        ThreadId(v as u32)
    }
}

/// A byte address in the simulated shared address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache line containing this address, for a line size of
    /// `line_bytes` (must be a power of two).
    #[inline]
    pub const fn line(self, line_bytes: u64) -> LineAddr {
        debug_assert!(line_bytes.is_power_of_two());
        LineAddr(self.0 / line_bytes)
    }

    /// Byte offset within its cache line.
    #[inline]
    pub const fn line_offset(self, line_bytes: u64) -> u64 {
        debug_assert!(line_bytes.is_power_of_two());
        self.0 % line_bytes
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// A cache-line address (byte address divided by the line size).
///
/// Placement policies ([`em2-placement`](../em2_placement/index.html))
/// assign lines, not bytes, to home cores; so does the directory in the
/// coherence baseline.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// First byte address of this line, for a line size of `line_bytes`.
    #[inline]
    pub const fn base(self, line_bytes: u64) -> Addr {
        Addr(self.0 * line_bytes)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L0x{:x}", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line 0x{:x}", self.0)
    }
}

/// Whether a memory access reads or writes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A load: data travels back to the requester on a remote access.
    Read,
    /// A store: only an acknowledgement travels back on a remote access.
    Write,
}

impl AccessKind {
    /// True for [`AccessKind::Write`].
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "R"),
            AccessKind::Write => write!(f, "W"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_mapping_round_trips() {
        let a = Addr(0x1234);
        let l = a.line(64);
        assert_eq!(l, LineAddr(0x1234 / 64));
        assert_eq!(l.base(64).0, (0x1234 / 64) * 64);
        assert_eq!(a.line_offset(64), 0x1234 % 64);
    }

    #[test]
    fn line_boundaries() {
        assert_eq!(Addr(0).line(64), LineAddr(0));
        assert_eq!(Addr(63).line(64), LineAddr(0));
        assert_eq!(Addr(64).line(64), LineAddr(1));
        assert_eq!(Addr(127).line(64), LineAddr(1));
    }

    #[test]
    fn ids_are_ordered_and_indexable() {
        assert!(CoreId(3) < CoreId(4));
        assert_eq!(CoreId::from(7usize).index(), 7);
        assert_eq!(ThreadId::from(9usize).index(), 9);
    }

    #[test]
    fn debug_formats_are_compact() {
        assert_eq!(format!("{:?}", CoreId(5)), "C5");
        assert_eq!(format!("{:?}", ThreadId(6)), "T6");
        assert_eq!(format!("{:?}", Addr(255)), "0xff");
        assert_eq!(format!("{:?}", LineAddr(4)), "L0x4");
    }

    #[test]
    fn access_kind() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
        assert_eq!(AccessKind::Read.to_string(), "R");
        assert_eq!(AccessKind::Write.to_string(), "W");
    }
}
