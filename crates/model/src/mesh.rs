//! 2-D mesh geometry.
//!
//! The paper's target is a tiled CMP connected by a 2-D mesh on-chip
//! network (the Graphite configuration it evaluates on, and the
//! deadlock-free migration substrate of Cho et al. \[10\]). This module
//! owns the purely geometric part: core coordinates, Manhattan
//! distances, and X-Y route enumeration. The cycle-level router model
//! lives in `em2-noc`.

use crate::ids::CoreId;
use std::fmt;

/// A rectangular 2-D mesh of `width × height` cores, numbered row-major:
/// core `(x, y)` has id `y * width + x`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Mesh {
    width: u16,
    height: u16,
}

impl Mesh {
    /// Create a mesh with the given dimensions.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        Mesh { width, height }
    }

    /// The smallest square (or near-square) mesh holding `cores` cores.
    ///
    /// For a perfect square count this is the `√P × √P` mesh the paper
    /// assumes (e.g. 64 cores → 8×8); otherwise the width is rounded up
    /// and the height chosen so `width × height >= cores` with minimal
    /// slack.
    pub fn square_for(cores: usize) -> Self {
        assert!(cores > 0, "mesh must hold at least one core");
        let w = (cores as f64).sqrt().ceil() as u16;
        let h = cores.div_ceil(w as usize) as u16;
        Mesh::new(w, h)
    }

    /// Mesh width (number of columns).
    #[inline]
    pub const fn width(&self) -> u16 {
        self.width
    }

    /// Mesh height (number of rows).
    #[inline]
    pub const fn height(&self) -> u16 {
        self.height
    }

    /// Total number of tiles in the mesh.
    #[inline]
    pub const fn cores(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// `(x, y)` coordinates of a core.
    ///
    /// # Panics
    /// Panics (debug) if the core id is out of range.
    #[inline]
    pub fn coords(&self, core: CoreId) -> (u16, u16) {
        debug_assert!(core.index() < self.cores(), "core {core:?} outside mesh");
        let x = core.0 % self.width;
        let y = core.0 / self.width;
        (x, y)
    }

    /// Core id at coordinates `(x, y)`.
    #[inline]
    pub fn at(&self, x: u16, y: u16) -> CoreId {
        debug_assert!(x < self.width && y < self.height);
        CoreId(y * self.width + x)
    }

    /// Manhattan hop distance between two cores — the number of
    /// router-to-router links a packet traverses under minimal routing.
    #[inline]
    pub fn hops(&self, a: CoreId, b: CoreId) -> u64 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        (ax.abs_diff(bx) as u64) + (ay.abs_diff(by) as u64)
    }

    /// The diameter of the mesh: the largest hop count between any two
    /// cores (corner to corner).
    #[inline]
    pub fn diameter(&self) -> u64 {
        (self.width as u64 - 1) + (self.height as u64 - 1)
    }

    /// Iterate over all core ids in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..self.cores()).map(CoreId::from)
    }

    /// The mesh neighbours of a core (2, 3, or 4 of them).
    pub fn neighbors(&self, core: CoreId) -> impl Iterator<Item = CoreId> + '_ {
        let (x, y) = self.coords(core);
        let w = self.width;
        let h = self.height;
        let mesh = *self;
        [
            (x > 0).then(|| mesh.at(x - 1, y)),
            (x + 1 < w).then(|| mesh.at(x + 1, y)),
            (y > 0).then(|| mesh.at(x, y - 1)),
            (y + 1 < h).then(|| mesh.at(x, y + 1)),
        ]
        .into_iter()
        .flatten()
    }

    /// The sequence of cores on the X-Y (dimension-ordered) route from
    /// `src` to `dst`, *excluding* `src` and *including* `dst`.
    ///
    /// X-Y routing first corrects the X coordinate, then the Y
    /// coordinate; it is minimal and, combined with per-class virtual
    /// channels, deadlock-free (paper §3 requires six virtual channels
    /// to separate migrations, evictions, and remote-access traffic).
    pub fn xy_route(&self, src: CoreId, dst: CoreId) -> Vec<CoreId> {
        let (mut x, mut y) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let mut route = Vec::with_capacity(self.hops(src, dst) as usize);
        while x != dx {
            if x < dx {
                x += 1;
            } else {
                x -= 1;
            }
            route.push(self.at(x, y));
        }
        while y != dy {
            if y < dy {
                y += 1;
            } else {
                y -= 1;
            }
            route.push(self.at(x, y));
        }
        route
    }

    /// Average hop distance from `src` to all cores (including itself,
    /// which contributes zero). Useful for placement quality metrics.
    pub fn mean_hops_from(&self, src: CoreId) -> f64 {
        let total: u64 = self.iter().map(|c| self.hops(src, c)).sum();
        total as f64 / self.cores() as f64
    }
}

impl fmt::Display for Mesh {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} mesh ({} cores)",
            self.width,
            self.height,
            self.cores()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_for_perfect_squares() {
        for p in [1usize, 4, 16, 64, 256, 1024] {
            let m = Mesh::square_for(p);
            assert_eq!(m.cores(), p, "square_for({p})");
            assert_eq!(m.width(), m.height());
        }
    }

    #[test]
    fn square_for_non_squares_covers() {
        for p in [2usize, 3, 5, 6, 7, 12, 48, 100, 1000] {
            let m = Mesh::square_for(p);
            assert!(m.cores() >= p, "square_for({p}) = {m}");
            // Slack never exceeds one row.
            assert!(m.cores() - p < m.width() as usize);
        }
    }

    #[test]
    fn coords_round_trip() {
        let m = Mesh::new(8, 8);
        for c in m.iter() {
            let (x, y) = m.coords(c);
            assert_eq!(m.at(x, y), c);
        }
    }

    #[test]
    fn hops_matches_manual() {
        let m = Mesh::new(8, 8);
        assert_eq!(m.hops(m.at(0, 0), m.at(0, 0)), 0);
        assert_eq!(m.hops(m.at(0, 0), m.at(7, 7)), 14);
        assert_eq!(m.hops(m.at(3, 2), m.at(1, 5)), 2 + 3);
        assert_eq!(m.diameter(), 14);
    }

    #[test]
    fn hops_symmetric() {
        let m = Mesh::new(5, 3);
        for a in m.iter() {
            for b in m.iter() {
                assert_eq!(m.hops(a, b), m.hops(b, a));
            }
        }
    }

    #[test]
    fn route_length_equals_hops_and_ends_at_dst() {
        let m = Mesh::new(6, 4);
        for a in m.iter() {
            for b in m.iter() {
                let r = m.xy_route(a, b);
                assert_eq!(r.len() as u64, m.hops(a, b));
                if a != b {
                    assert_eq!(*r.last().unwrap(), b);
                    // Every step moves exactly one hop.
                    let mut prev = a;
                    for &step in &r {
                        assert_eq!(m.hops(prev, step), 1);
                        prev = step;
                    }
                }
            }
        }
    }

    #[test]
    fn xy_route_is_x_first() {
        let m = Mesh::new(4, 4);
        let r = m.xy_route(m.at(0, 0), m.at(2, 2));
        assert_eq!(r, vec![m.at(1, 0), m.at(2, 0), m.at(2, 1), m.at(2, 2)]);
    }

    #[test]
    fn neighbors_count() {
        let m = Mesh::new(3, 3);
        // corner, edge, center
        assert_eq!(m.neighbors(m.at(0, 0)).count(), 2);
        assert_eq!(m.neighbors(m.at(1, 0)).count(), 3);
        assert_eq!(m.neighbors(m.at(1, 1)).count(), 4);
    }

    #[test]
    fn neighbors_are_one_hop() {
        let m = Mesh::new(4, 5);
        for c in m.iter() {
            for n in m.neighbors(c) {
                assert_eq!(m.hops(c, n), 1);
            }
        }
    }

    #[test]
    fn mean_hops_center_less_than_corner() {
        let m = Mesh::new(8, 8);
        let corner = m.mean_hops_from(m.at(0, 0));
        let center = m.mean_hops_from(m.at(3, 3));
        assert!(center < corner);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_panic() {
        let _ = Mesh::new(0, 3);
    }
}
