//! # em2-model
//!
//! Shared model types for the EM² reproduction (Lis et al., *Brief
//! Announcement: Distributed Shared Memory based on Computation
//! Migration*, SPAA 2011).
//!
//! This crate holds everything the rest of the workspace agrees on:
//!
//! * [`ids`] — strongly-typed identifiers for cores, threads, addresses
//!   and cache lines;
//! * [`mesh`] — 2-D mesh geometry (the on-chip network topology the
//!   paper assumes);
//! * [`cost`] — the closed-form network cost model underlying both the
//!   simulator's default timing and the paper's §3 dynamic program;
//! * [`rng`] — a deterministic, seedable PRNG so that every experiment
//!   in the workspace is bit-reproducible;
//! * [`histogram`] — integer histograms (run-length distributions,
//!   Figure 2 of the paper);
//! * [`stats`] — streaming scalar statistics (mean/variance/min/max);
//! * [`bytes`] — the binary-codec kernel (LE writers, bounds-checked
//!   cursor, typed errors) every hand-rolled wire format builds on;
//! * [`mod@env`] — the typed registry of `EM2_*` environment knobs (the
//!   only place the workspace reads them; warns once on typos).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bytes;
pub mod cost;
pub mod env;
pub mod histogram;
pub mod ids;
pub mod mesh;
pub mod rng;
pub mod stats;

pub use cost::{ContextSpec, CostModel, CostModelBuilder};
pub use histogram::Histogram;
pub use ids::{AccessKind, Addr, CoreId, LineAddr, ThreadId};
pub use mesh::Mesh;
pub use rng::DetRng;
pub use stats::Summary;

/// Ceiling division of two unsigned integers.
///
/// Used throughout the workspace for flit counts:
/// `ceil_div(payload_bits, link_width)` is the number of cycles needed
/// to serialize a payload onto a link.
#[inline]
pub const fn ceil_div(a: u64, b: u64) -> u64 {
    debug_assert!(b > 0);
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_div_basics() {
        assert_eq!(ceil_div(0, 8), 0);
        assert_eq!(ceil_div(1, 8), 1);
        assert_eq!(ceil_div(8, 8), 1);
        assert_eq!(ceil_div(9, 8), 2);
        assert_eq!(ceil_div(u64::MAX, 1), u64::MAX);
    }
}
