//! Integer-valued histograms.
//!
//! Figure 2 of the paper is a histogram of *run lengths*: for every
//! stretch of consecutive accesses a thread makes to memory homed at
//! the same non-native core, the stretch's length is binned and the
//! figure plots, per bin, the number of *accesses* contributed (i.e.,
//! `length × occurrences`). [`Histogram`] supports both views:
//! occurrence counts and value-weighted counts.

use std::fmt;

/// A histogram over non-negative integer samples with unit-width bins
/// `0..=max_bin` plus an overflow bin collecting everything larger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    max_bin: u64,
    /// counts[v] = number of samples with value v, for v in 0..=max_bin;
    /// the final slot is the overflow bin.
    counts: Vec<u64>,
    /// Sum of all sample values (exact, including overflow samples).
    total_value: u128,
    /// Number of samples.
    total_count: u64,
    /// Largest sample seen.
    max_seen: u64,
}

impl Histogram {
    /// A histogram with unit bins `0..=max_bin` and an overflow bin.
    pub fn new(max_bin: u64) -> Self {
        Histogram {
            max_bin,
            counts: vec![0; max_bin as usize + 2],
            total_value: 0,
            total_count: 0,
            max_seen: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` samples of the same value.
    #[inline]
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = if value <= self.max_bin {
            value as usize
        } else {
            self.counts.len() - 1
        };
        self.counts[idx] += n;
        self.total_value += value as u128 * n as u128;
        self.total_count += n;
        self.max_seen = self.max_seen.max(value);
    }

    /// Number of samples recorded with exactly this value
    /// (values above `max_bin` land in the overflow bin).
    #[inline]
    pub fn count(&self, value: u64) -> u64 {
        if value <= self.max_bin {
            self.counts[value as usize]
        } else {
            0
        }
    }

    /// Samples in the overflow bin (value > `max_bin`).
    #[inline]
    pub fn overflow(&self) -> u64 {
        *self.counts.last().unwrap()
    }

    /// Total number of samples.
    #[inline]
    pub fn total_count(&self) -> u64 {
        self.total_count
    }

    /// Exact sum of all sample values.
    #[inline]
    pub fn total_value(&self) -> u128 {
        self.total_value
    }

    /// Largest sample value seen (0 if empty).
    #[inline]
    pub fn max_seen(&self) -> u64 {
        self.max_seen
    }

    /// Mean sample value (`None` if empty).
    pub fn mean(&self) -> Option<f64> {
        (self.total_count > 0).then(|| self.total_value as f64 / self.total_count as f64)
    }

    /// The highest bin index (overflow excluded).
    #[inline]
    pub fn max_bin(&self) -> u64 {
        self.max_bin
    }

    /// Iterate `(value, occurrence_count)` over the unit bins,
    /// overflow excluded.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts[..=self.max_bin as usize]
            .iter()
            .enumerate()
            .map(|(v, &c)| (v as u64, c))
    }

    /// Iterate `(value, value × occurrence_count)` — the *weighted*
    /// view Figure 2 plots ("# of accesses ... binned by run length").
    /// Overflow excluded; use [`Histogram::overflow_weighted_lower_bound`]
    /// for the tail.
    pub fn iter_weighted(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.iter().map(|(v, c)| (v, v * c))
    }

    /// Lower bound on the weighted mass in the overflow bin
    /// (each overflow sample counts at least `max_bin + 1`).
    pub fn overflow_weighted_lower_bound(&self) -> u64 {
        self.overflow() * (self.max_bin + 1)
    }

    /// Exact weighted mass of the whole histogram — equals
    /// [`Histogram::total_value`]. Σ over weighted bins + the exact
    /// overflow weight.
    pub fn weighted_total(&self) -> u128 {
        self.total_value
    }

    /// Fraction of the *weighted* mass at values `<= v` (0.0 if empty).
    ///
    /// For Figure 2: `weighted_fraction_le(1)` is the fraction of
    /// non-native accesses that migrate away after a single reference —
    /// the paper reports "about half".
    pub fn weighted_fraction_le(&self, v: u64) -> f64 {
        if self.total_value == 0 {
            return 0.0;
        }
        let upto: u128 = self
            .iter_weighted()
            .take_while(|&(value, _)| value <= v)
            .map(|(_, w)| w as u128)
            .sum();
        upto as f64 / self.total_value as f64
    }

    /// Smallest value `v` with cumulative occurrence count ≥ `q` of the
    /// total (`q` in `[0,1]`). Overflow samples report `max_bin + 1`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total_count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.total_count as f64).ceil() as u64).max(1);
        let mut cum = 0;
        for (v, c) in self.iter() {
            cum += c;
            if cum >= target {
                return Some(v);
            }
        }
        Some(self.max_bin + 1)
    }

    /// Merge another histogram into this one.
    ///
    /// # Panics
    /// Panics if bin layouts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.max_bin, other.max_bin, "histogram bin mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total_value += other.total_value;
        self.total_count += other.total_count;
        self.max_seen = self.max_seen.max(other.max_seen);
    }

    /// Render a fixed-width ASCII bar chart of the weighted view
    /// (the Figure-2 presentation), listing bins `from..=to`.
    pub fn ascii_chart_weighted(&self, from: u64, to: u64, width: usize) -> String {
        let to = to.min(self.max_bin);
        let peak = self
            .iter_weighted()
            .filter(|&(v, _)| v >= from && v <= to)
            .map(|(_, w)| w)
            .max()
            .unwrap_or(0)
            .max(1);
        let mut out = String::new();
        for (v, w) in self.iter_weighted() {
            if v < from || v > to {
                continue;
            }
            let bar = (w as u128 * width as u128 / peak as u128) as usize;
            out.push_str(&format!("{v:>4} | {:<width$} {w}\n", "#".repeat(bar)));
        }
        if self.overflow() > 0 {
            out.push_str(&format!(
                "  >{} | ({} samples in overflow)\n",
                self.max_bin,
                self.overflow()
            ));
        }
        out
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "histogram: n={}, mean={:.2}, max={}",
            self.total_count,
            self.mean().unwrap_or(0.0),
            self.max_seen
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut h = Histogram::new(10);
        h.record(0);
        h.record(3);
        h.record(3);
        h.record_n(10, 5);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(3), 2);
        assert_eq!(h.count(10), 5);
        assert_eq!(h.total_count(), 8);
        assert_eq!(h.total_value(), 3 + 3 + 50);
    }

    #[test]
    fn overflow_is_separate() {
        let mut h = Histogram::new(4);
        h.record(5);
        h.record(100);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(4), 0);
        assert_eq!(h.max_seen(), 100);
        assert_eq!(h.total_value(), 105);
        assert_eq!(h.overflow_weighted_lower_bound(), 10);
    }

    #[test]
    fn weighted_view_multiplies() {
        let mut h = Histogram::new(8);
        h.record_n(2, 3); // weight 6
        h.record_n(4, 1); // weight 4
        let weighted: Vec<(u64, u64)> = h.iter_weighted().filter(|&(_, w)| w > 0).collect();
        assert_eq!(weighted, vec![(2, 6), (4, 4)]);
        assert_eq!(h.weighted_total(), 10);
    }

    #[test]
    fn weighted_fraction_le_figure2_style() {
        // 50 runs of length 1, 10 runs of length 5: equal weighted mass.
        let mut h = Histogram::new(60);
        h.record_n(1, 50);
        h.record_n(5, 10);
        let f = h.weighted_fraction_le(1);
        assert!((f - 0.5).abs() < 1e-9, "fraction = {f}");
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new(100);
        for v in 1..=100 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(1.0), Some(100));
        assert_eq!(Histogram::new(4).quantile(0.5), None);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Histogram::new(8);
        let mut b = Histogram::new(8);
        a.record_n(1, 2);
        b.record_n(1, 3);
        b.record(20);
        a.merge(&b);
        assert_eq!(a.count(1), 5);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.total_count(), 6);
        assert_eq!(a.max_seen(), 20);
    }

    #[test]
    #[should_panic(expected = "bin mismatch")]
    fn merge_rejects_mismatched_bins() {
        let mut a = Histogram::new(8);
        let b = Histogram::new(9);
        a.merge(&b);
    }

    #[test]
    fn mean_empty_is_none() {
        assert_eq!(Histogram::new(4).mean(), None);
        let mut h = Histogram::new(4);
        h.record_n(2, 4);
        assert_eq!(h.mean(), Some(2.0));
    }

    #[test]
    fn ascii_chart_contains_bins() {
        let mut h = Histogram::new(10);
        h.record_n(1, 10);
        h.record_n(3, 2);
        h.record(99);
        let chart = h.ascii_chart_weighted(1, 10, 40);
        assert!(chart.contains("   1 |"));
        assert!(chart.contains("overflow"));
    }

    #[test]
    fn clone_round_trip() {
        let mut h = Histogram::new(16);
        h.record_n(3, 7);
        h.record(40);
        let back = h.clone();
        assert_eq!(h, back);
        let mut other = Histogram::new(16);
        other.record_n(3, 7);
        assert_ne!(h, other, "overflow must participate in equality");
    }
}
