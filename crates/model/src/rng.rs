//! Deterministic pseudo-random number generation.
//!
//! Every stochastic choice in the workspace (workload generation,
//! random replacement, eviction victim selection) flows from
//! [`DetRng`], a self-contained xoshiro256** implementation seeded via
//! SplitMix64. We implement it here rather than relying on an external
//! generator so that results are bit-stable across platforms and crate
//! versions — a hard requirement for the DP-vs-simulator cross-checks
//! and for reproducible experiment tables.

/// A deterministic xoshiro256** PRNG.
///
/// Not cryptographically secure; statistically excellent and very fast,
/// which is all a simulator needs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

#[inline]
const fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Seed the generator. Any seed (including 0) is valid: the state
    /// is expanded through SplitMix64 so it is never all-zero.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The raw generator state, for serialization (e.g. a migratable
    /// task shipping its RNG inside a context). Restore with
    /// [`DetRng::from_state`].
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a [`DetRng::state`] snapshot; resumes
    /// the sequence exactly.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
        DetRng { s }
    }

    /// Derive an independent stream for a sub-component; `stream`
    /// selects the branch. Used to give each thread / each core its own
    /// generator without coupling their sequences.
    pub fn fork(&self, stream: u64) -> Self {
        // Mix the stream id through SplitMix64 against the current state.
        let mut sm = self.s.iter().fold(stream ^ 0xA0761D6478BD642F, |acc, &w| {
            acc.rotate_left(23).wrapping_add(w)
        });
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        if lo == hi {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    #[inline]
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose from empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Geometric-ish draw: number of consecutive successes with
    /// probability `p` each, capped at `cap`. Used by trace generators
    /// to produce bursty run lengths.
    pub fn geometric(&mut self, p: f64, cap: u64) -> u64 {
        let mut n = 0;
        while n < cap && self.chance(p) {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_round_trips_mid_sequence() {
        // The serialization pair: a generator rebuilt from a state
        // snapshot (e.g. a migrated task's context) resumes the exact
        // sequence.
        let mut a = DetRng::new(7);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = DetRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn all_zero_state_rejected() {
        DetRng::from_state([0; 4]);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = DetRng::new(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, 0);
        assert_ne!(x, y);
    }

    #[test]
    fn forked_streams_are_independent() {
        let root = DetRng::new(7);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
        // Forking is deterministic too.
        let mut a2 = root.fork(0);
        assert_eq!(a2.next_u64(), DetRng::new(7).fork(0).next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(3);
        for bound in [1u64, 2, 3, 7, 100, 1 << 33] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = DetRng::new(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.below(8) as usize] += 1;
        }
        for &c in &counts {
            // expectation 10k; allow ±6%
            assert!((9_400..=10_600).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn range_inclusive_hits_both_ends() {
        let mut r = DetRng::new(13);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            match r.range_inclusive(10, 12) {
                10 => lo_seen = true,
                12 => hi_seen = true,
                11 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(17);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn geometric_cap_respected() {
        let mut r = DetRng::new(19);
        for _ in 0..1000 {
            assert!(r.geometric(0.99, 5) <= 5);
        }
        // p = 0 never succeeds
        assert_eq!(r.geometric(0.0, 10), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(23);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.1));
    }
}
