//! Streaming scalar statistics.
//!
//! [`Summary`] accumulates count / sum / min / max / mean / variance in
//! one pass using Welford's algorithm — used for per-experiment latency
//! and traffic summaries throughout the workspace.

use std::fmt;

/// One-pass summary statistics over `f64`-convertible samples.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    mean: f64,
    m2: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            mean: 0.0,
            m2: 0.0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Record an integer sample.
    #[inline]
    pub fn record_u64(&mut self, x: u64) {
        self.record(x as f64);
    }

    /// Number of samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    #[inline]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean (`None` if empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance (`None` if empty).
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Population standard deviation (`None` if empty).
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Merge another summary into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.2} sd={:.2} min={:.0} max={:.0}",
            self.count,
            self.mean,
            self.stddev().unwrap_or(0.0),
            self.min,
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn known_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), Some(5.0));
        assert_eq!(s.variance(), Some(4.0)); // classic textbook set
        assert_eq!(s.stddev(), Some(2.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i * 37 % 11) as f64).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &xs[..33] {
            left.record(x);
        }
        for &x in &xs[33..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
        assert!((left.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        b.record(3.0);
        a.merge(&b); // empty ← non-empty
        assert_eq!(a.mean(), Some(3.0));
        let empty = Summary::new();
        a.merge(&empty); // non-empty ← empty
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn record_u64_works() {
        let mut s = Summary::new();
        s.record_u64(10);
        s.record_u64(20);
        assert_eq!(s.mean(), Some(15.0));
    }
}
