//! Property-based tests for the shared model types.

use em2_model::{ceil_div, AccessKind, CoreId, CostModel, Histogram, Mesh, Summary};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ceil_div_is_exact(a in 0u64..1_000_000, b in 1u64..10_000) {
        let q = ceil_div(a, b);
        prop_assert!(q * b >= a);
        prop_assert!(q == 0 || (q - 1) * b < a);
    }

    #[test]
    fn mesh_hops_is_a_metric(w in 1u16..10, h in 1u16..10, seed in any::<u64>()) {
        let mesh = Mesh::new(w, h);
        let n = mesh.cores() as u64;
        let pick = |s: u64| CoreId::from((s % n) as usize);
        let (a, b, c) = (pick(seed), pick(seed / 7 + 1), pick(seed / 13 + 2));
        // identity, symmetry, triangle inequality
        prop_assert_eq!(mesh.hops(a, a), 0);
        prop_assert_eq!(mesh.hops(a, b), mesh.hops(b, a));
        prop_assert!(mesh.hops(a, c) <= mesh.hops(a, b) + mesh.hops(b, c));
        prop_assert!(mesh.hops(a, b) <= mesh.diameter());
    }

    #[test]
    fn xy_routes_are_minimal_and_valid(w in 2u16..8, h in 2u16..8, s in any::<u64>(), d in any::<u64>()) {
        let mesh = Mesh::new(w, h);
        let n = mesh.cores() as u64;
        let src = CoreId::from((s % n) as usize);
        let dst = CoreId::from((d % n) as usize);
        let route = mesh.xy_route(src, dst);
        prop_assert_eq!(route.len() as u64, mesh.hops(src, dst));
        let mut prev = src;
        for &step in &route {
            prop_assert_eq!(mesh.hops(prev, step), 1);
            prev = step;
        }
        if src != dst {
            prop_assert_eq!(*route.last().unwrap(), dst);
        }
    }

    #[test]
    fn histogram_conserves_mass(values in prop::collection::vec(0u64..200, 0..300)) {
        let mut h = Histogram::new(60);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total_count(), values.len() as u64);
        prop_assert_eq!(h.total_value(), values.iter().map(|&v| v as u128).sum::<u128>());
        // Bin counts + overflow == total.
        let binned: u64 = h.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(binned + h.overflow(), h.total_count());
        // Weighted fractions are monotone in the threshold.
        let f1 = h.weighted_fraction_le(1);
        let f10 = h.weighted_fraction_le(10);
        let f60 = h.weighted_fraction_le(60);
        prop_assert!(f1 <= f10 + 1e-12);
        prop_assert!(f10 <= f60 + 1e-12);
    }

    #[test]
    fn histogram_merge_is_addition(
        xs in prop::collection::vec(0u64..100, 0..100),
        ys in prop::collection::vec(0u64..100, 0..100),
    ) {
        let mut a = Histogram::new(40);
        let mut b = Histogram::new(40);
        let mut whole = Histogram::new(40);
        for &v in &xs { a.record(v); whole.record(v); }
        for &v in &ys { b.record(v); whole.record(v); }
        a.merge(&b);
        prop_assert_eq!(a, whole);
    }

    #[test]
    fn summary_merge_equals_sequential(
        xs in prop::collection::vec(-1e6f64..1e6, 0..200),
        split in 0usize..200,
    ) {
        let split = split.min(xs.len());
        let mut whole = Summary::new();
        for &x in &xs { whole.record(x); }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &xs[..split] { left.record(x); }
        for &x in &xs[split..] { right.record(x); }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        if !xs.is_empty() {
            prop_assert!((left.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-6);
            prop_assert!((left.variance().unwrap() - whole.variance().unwrap()).abs() < 1.0);
            prop_assert_eq!(left.min(), whole.min());
            prop_assert_eq!(left.max(), whole.max());
        }
    }

    #[test]
    fn cost_model_monotone_in_distance_and_size(
        x1 in 0u16..8, y1 in 0u16..8, bits in 64u64..4096,
    ) {
        let cm = CostModel::default();
        let origin = cm.mesh.at(0, 0);
        let a = cm.mesh.at(x1, y1);
        // Strictly further cores cost at least as much.
        if x1 + 1 < 8 {
            let b = cm.mesh.at(x1 + 1, y1);
            prop_assert!(
                cm.migration_latency_bits(origin, a, bits)
                    <= cm.migration_latency_bits(origin, b, bits)
            );
            prop_assert!(
                cm.remote_access_latency(origin, a, AccessKind::Read)
                    <= cm.remote_access_latency(origin, b, AccessKind::Read)
            );
        }
        // Bigger contexts never migrate faster.
        prop_assert!(
            cm.migration_latency_bits(origin, a, bits)
                <= cm.migration_latency_bits(origin, a, bits * 2)
        );
    }

    #[test]
    fn rng_streams_are_reproducible(seed in any::<u64>(), n in 1usize..100) {
        let mut a = em2_model::DetRng::new(seed);
        let mut b = em2_model::DetRng::new(seed);
        for _ in 0..n {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let bound = 1 + (seed % 1000);
        for _ in 0..n {
            prop_assert!(a.below(bound) < bound);
        }
    }
}
