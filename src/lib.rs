//! # em2 — Distributed Shared Memory based on Computation Migration
//!
//! Facade crate for the full EM² reproduction workspace (Lis et al.,
//! SPAA 2011). Re-exports every sub-crate under a stable path:
//!
//! * [`model`] — shared types: ids, mesh geometry, cost model, stats;
//! * [`noc`] — cycle-level 2-D mesh network-on-chip;
//! * [`cache`] — set-associative caches, L1/L2 hierarchy, DRAM;
//! * [`trace`] — memory traces + SPLASH-2-like workload generators;
//! * [`engine`] — the shared discrete-event kernel both simulators run
//!   on (deterministic event queue, barriers, contention timing);
//! * [`placement`] — data placement policies (first-touch, striped, …);
//! * [`core`] — the EM² / EM²-RA machine and simulator;
//! * [`rt`] — the executable runtime: OS-thread shards, migratable
//!   task continuations, word-granular remote access — cross-validated
//!   against the simulator (E11);
//! * [`net`] — the cross-process transport layer: the runtime as a
//!   multi-process distributed DSM over loopback/UDS/TCP,
//!   cross-validated against the single-process runtime (E12);
//! * [`obs`] — the observability plane: lock-free metrics, task
//!   lifecycle tracing, the crash flight recorder (strictly
//!   timing-plane; never part of any agreement check);
//! * [`stack`] — the stack-machine EM² variant;
//! * [`optimal`] — the paper's dynamic-programming analytical model;
//! * [`coherence`] — the directory-MSI baseline.
//!
//! See `examples/quickstart.rs` for a complete first run.

pub use em2_cache as cache;
pub use em2_coherence as coherence;
pub use em2_core as core;
pub use em2_engine as engine;
pub use em2_model as model;
pub use em2_net as net;
pub use em2_noc as noc;
pub use em2_obs as obs;
pub use em2_optimal as optimal;
pub use em2_placement as placement;
pub use em2_rt as rt;
pub use em2_stack as stack;
pub use em2_trace as trace;
