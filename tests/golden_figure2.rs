//! Golden regression pins for the reproduction's headline numbers.
//!
//! Everything in this repository is deterministic, so the exact values
//! of the quick-scale Figure-2 histogram are stable; if a change to a
//! generator, placement policy, or the analyzer shifts them, this test
//! fails loudly and EXPERIMENTS.md must be regenerated deliberately.

use em2::placement::{run_length_analysis, FirstTouch};
use em2::trace::gen::ocean::OceanConfig;

fn quick() -> OceanConfig {
    OceanConfig {
        interior: 128,
        threads: 16,
        cores: 16,
        iterations: 2,
        levels: 3,
        ..OceanConfig::default()
    }
}

#[test]
fn figure2_quick_scale_goldens() {
    let w = quick().generate();
    let p = FirstTouch::build(&w, 16, 64);
    let a = run_length_analysis(&w, &p, 60);

    // Pinned from the recorded run (EXPERIMENTS.md / experiments --quick).
    assert_eq!(a.total_accesses, 293_227);
    assert_eq!(a.non_native_accesses, 14_076);
    assert_eq!(a.histogram.count(1), 7_026);
    assert_eq!(a.histogram.count(8), 490);
    assert_eq!(a.histogram.count(16), 60);
    assert_eq!(a.histogram.count(32), 60);
    let f = a.single_access_fraction();
    assert!((f - 0.499).abs() < 0.001, "single fraction drifted: {f}");
}

#[test]
fn figure2_quick_scale_workload_shape() {
    let w = quick().generate();
    let s = w.stats(64);
    assert_eq!(w.num_threads(), 16);
    assert_eq!(s.accesses, 293_227);
    assert!(s.reads > 2 * s.writes);
}

#[test]
fn dp_optimum_golden() {
    // The §3 DP on the quick ocean workload under first-touch: pinned
    // optimum (any cost-model or DP change must be deliberate).
    let w = quick().generate();
    let p = FirstTouch::build(&w, 16, 64);
    let cost = em2::model::CostModel::builder().cores(16).build();
    let (opt, per) = em2::optimal::workload_optimal_par(&w, &p, &cost, 8);
    assert_eq!(opt, 81_351);
    assert_eq!(per.len(), 16);
}
