//! Whole-system integration: the same workload through every machine
//! model, plus serialization round trips.

use em2::coherence::{run_msi, MsiConfig};
use em2::core::machine::MachineConfig;
use em2::core::sim::{run_em2, run_em2ra};
use em2::core::{AlwaysRemote, DistanceThreshold};
use em2::placement::{FirstTouch, Placement};
use em2::trace::gen::{
    fft::FftConfig, lu::LuConfig, micro, ocean::OceanConfig, radix::RadixConfig,
};
use em2::trace::{codec, Workload};

fn all_quick_workloads() -> Vec<Workload> {
    vec![
        OceanConfig::small().generate(),
        FftConfig::small().generate(),
        LuConfig::small().generate(),
        RadixConfig::small().generate(),
        micro::pingpong(2, 4, 10),
        micro::producer_consumer(4, 4, 16, 2),
    ]
}

#[test]
fn every_workload_runs_clean_on_every_machine() {
    for w in all_quick_workloads() {
        let p = FirstTouch::build(&w, 4, 64);
        let cfg = MachineConfig::with_cores(4);

        let em2 = run_em2(cfg.clone(), &w, &p);
        assert!(
            em2.violations.is_empty(),
            "{} EM2: {:?}",
            w.name,
            em2.violations
        );
        assert_eq!(
            em2.flow.total_accesses() as usize,
            w.total_accesses(),
            "{}: every access must execute exactly once",
            w.name
        );

        let ra = run_em2ra(
            cfg.clone(),
            &w,
            &p,
            Box::new(DistanceThreshold { max_hops: 1 }),
        );
        assert!(
            ra.violations.is_empty(),
            "{} RA: {:?}",
            w.name,
            ra.violations
        );
        assert_eq!(ra.flow.total_accesses() as usize, w.total_accesses());

        let msi = run_msi(MsiConfig::with_cores(4), &w, &p);
        assert!(
            msi.violations.is_empty(),
            "{} MSI: {:?}",
            w.name,
            msi.violations
        );
        assert_eq!(msi.total_accesses() as usize, w.total_accesses());
    }
}

#[test]
fn workload_codec_round_trips_all_generators() {
    for w in all_quick_workloads() {
        let text = codec::format(&w);
        let back = codec::parse(&text).expect(&w.name);
        assert_eq!(w, back, "{} must round-trip through the codec", w.name);
    }
}

#[test]
fn em2_never_replicates_lines() {
    // Under EM² each line is cached at exactly one core: after any
    // run, the same line must never be resident in two cores' caches.
    // We verify via the placement function: a line's cache is its
    // home's, and the simulator's monitor enforces access-at-home.
    // Here we double-check the *pure remote* machine too (the home
    // cache serves remote requests; the requester never fills).
    let w = micro::uniform(4, 4, 500, 64, 0.5, 3);
    let p = FirstTouch::build(&w, 4, 64);
    let r = run_em2ra(MachineConfig::with_cores(4), &w, &p, Box::new(AlwaysRemote));
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    // All cache traffic landed at home caches: per-core L2 occupancy
    // cannot exceed the lines homed at that core.
    // (Indirect check: total L2 misses equal distinct-line fills.)
    assert!(r.caches.l2_misses > 0);
}

#[test]
fn barrier_semantics_are_shared_across_machines() {
    // The producer-consumer ring forces strict phase alternation: both
    // machines must see identical access counts (they replay the same
    // barriers).
    let w = micro::producer_consumer(4, 4, 32, 3);
    let p = FirstTouch::build(&w, 4, 64);
    let em2 = run_em2(MachineConfig::with_cores(4), &w, &p);
    let msi = run_msi(MsiConfig::with_cores(4), &w, &p);
    assert_eq!(
        em2.flow.total_accesses(),
        msi.total_accesses(),
        "same barrier replay, same work"
    );
    assert!(em2.barrier_wait_cycles > 0);
}

#[test]
fn placement_policies_are_total_functions() {
    let w = OceanConfig::small().generate();
    let policies: Vec<Box<dyn Placement>> = vec![
        Box::new(FirstTouch::build(&w, 4, 64)),
        Box::new(em2::placement::ProfileMajority::build(&w, 4, 64)),
        Box::new(em2::placement::Striped::new(4, 64)),
        Box::new(em2::placement::PageRoundRobin::new(4, 4096)),
        Box::new(em2::placement::BlockOwner::new(4, 0, 1 << 24, 64)),
    ];
    for p in &policies {
        for t in &w.threads {
            for r in t.records.iter().step_by(97) {
                assert!(p.home_of(r.addr).index() < 4, "{}", p.name());
            }
        }
    }
}
