//! The cycle-level NoC against the closed-form latency model the DP
//! and simulator use — the E9 validation, as tests.

use em2::model::{CostModel, Mesh};
use em2::noc::{CycleNoc, NocConfig, VirtualChannel};

#[test]
fn uncontended_latency_matches_closed_form_everywhere() {
    let mesh = Mesh::new(4, 4);
    let cm = CostModel::builder().mesh(mesh).hop_latency(1).build();
    for src in mesh.iter() {
        for dst in mesh.iter() {
            for bits in [64u64, 512, 1120] {
                let mut noc = CycleNoc::new(NocConfig {
                    mesh,
                    ..NocConfig::default()
                });
                noc.inject(src, dst, VirtualChannel::Migration, bits);
                noc.run_until_idle(100_000).expect("deadlock");
                let measured = noc.take_deliveries()[0].latency();
                // Closed form + 2 cycles injection/ejection overhead of
                // the cycle model.
                let model = cm.one_way(src, dst, bits) + 2;
                assert_eq!(
                    measured, model,
                    "{src:?}->{dst:?} {bits}b: measured {measured} vs model {model}"
                );
            }
        }
    }
}

#[test]
fn eviction_class_is_never_blocked_by_migrations() {
    // Saturate the migration class along a row, then send one eviction
    // along the same path: the paper's separate-virtual-network rule
    // says it must get through long before the migration backlog
    // drains.
    let mesh = Mesh::new(8, 1);
    let mut noc = CycleNoc::new(NocConfig {
        mesh,
        ..NocConfig::default()
    });
    let src = mesh.at(0, 0);
    let dst = mesh.at(7, 0);
    for _ in 0..50 {
        noc.inject(src, dst, VirtualChannel::Migration, 4096);
    }
    noc.inject(src, dst, VirtualChannel::Eviction, 1120);
    noc.run_until_idle(1_000_000).expect("deadlock");
    let deliveries = noc.take_deliveries();
    let evict_t = deliveries
        .iter()
        .find(|d| d.info.vc == VirtualChannel::Eviction)
        .unwrap()
        .delivered_at;
    let last_mig = deliveries
        .iter()
        .filter(|d| d.info.vc == VirtualChannel::Migration)
        .map(|d| d.delivered_at)
        .max()
        .unwrap();
    assert!(
        evict_t < last_mig / 2,
        "eviction at {evict_t} should beat the migration backlog ({last_mig})"
    );
}

#[test]
fn bidirectional_request_response_cannot_deadlock() {
    // Classic protocol deadlock shape: every core sends requests to
    // every other and must absorb responses. With requests and
    // responses on separate VCs the storm always drains.
    let mesh = Mesh::new(4, 4);
    let mut noc = CycleNoc::new(NocConfig {
        mesh,
        buf_depth: 2, // tight buffers: maximal backpressure
        ..NocConfig::default()
    });
    for s in mesh.iter() {
        for d in mesh.iter() {
            if s != d {
                noc.inject(s, d, VirtualChannel::RemoteReq, 96);
                noc.inject(d, s, VirtualChannel::RemoteResp, 64);
            }
        }
    }
    let injected = noc.stats().injected;
    assert!(
        noc.run_until_idle(10_000_000).is_some(),
        "request/response storm deadlocked"
    );
    assert_eq!(noc.stats().delivered, injected);
}

#[test]
fn traffic_accounting_matches_cost_model() {
    // Flit-hops measured by the cycle NoC equal hops × flits from the
    // shared cost model for isolated packets.
    let mesh = Mesh::new(4, 4);
    let cm = CostModel::builder().mesh(mesh).build();
    let mut noc = CycleNoc::new(NocConfig {
        mesh,
        ..NocConfig::default()
    });
    let src = mesh.at(0, 0);
    let dst = mesh.at(3, 2);
    noc.inject(src, dst, VirtualChannel::Migration, 1120);
    noc.run_until_idle(10_000).unwrap();
    assert_eq!(
        noc.stats().flit_hops,
        cm.migration_traffic_bits(src, dst, 1120)
    );
}
