//! Cross-crate determinism: identical configurations must produce
//! bit-identical results across every machine model — a prerequisite
//! for all the experiment tables.

use em2::coherence::{run_msi, MsiConfig};
use em2::core::machine::{EvictionPolicy, MachineConfig};
use em2::core::sim::{run_em2, run_em2ra};
use em2::core::HistoryPredictor;
use em2::placement::FirstTouch;
use em2::trace::gen::{micro, ocean::OceanConfig, synth::SynthConfig};

#[test]
fn em2_runs_are_reproducible() {
    let w = OceanConfig::small().generate();
    let p = FirstTouch::build(&w, 4, 64);
    let a = run_em2(MachineConfig::with_cores(4), &w, &p);
    let b = run_em2(MachineConfig::with_cores(4), &w, &p);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.flow, b.flow);
    assert_eq!(a.run_lengths, b.run_lengths);
    assert_eq!(a.traffic, b.traffic);
    assert_eq!(a.context_bits_sent, b.context_bits_sent);
    assert_eq!(a.network_cycles, b.network_cycles);
}

#[test]
fn random_eviction_is_seeded() {
    let w = micro::hotspot(8, 8, 400, 0.9, 1);
    let p = FirstTouch::build(&w, 8, 64);
    let mk = || MachineConfig {
        guest_contexts: 1,
        eviction: EvictionPolicy::Random { seed: 99 },
        ..MachineConfig::with_cores(8)
    };
    let a = run_em2(mk(), &w, &p);
    let b = run_em2(mk(), &w, &p);
    assert_eq!(a.flow, b.flow);
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn learning_scheme_is_reproducible() {
    let w = SynthConfig::small().generate();
    let p = FirstTouch::build(&w, 4, 64);
    let run = || {
        run_em2ra(
            MachineConfig::with_cores(4),
            &w,
            &p,
            Box::new(HistoryPredictor::new(1.0, 0.5)),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.flow, b.flow);
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn msi_runs_are_reproducible() {
    let w = micro::uniform(4, 4, 500, 128, 0.4, 7);
    let p = FirstTouch::build(&w, 4, 64);
    let a = run_msi(MsiConfig::with_cores(4), &w, &p);
    let b = run_msi(MsiConfig::with_cores(4), &w, &p);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.total_flit_hops(), b.total_flit_hops());
    assert_eq!(a.invalidations, b.invalidations);
}

#[test]
fn queued_contention_is_deterministic_and_never_speeds_up_fixed_workloads() {
    // Queued contention only ever adds delay at the operation level;
    // on these fixed (fully deterministic) workloads that shows up as
    // a makespan no smaller than the closed-form run, and two queued
    // runs are bit-identical.
    use em2::engine::{Contention, QueuedParams};
    let w = OceanConfig::small().generate();
    let p = FirstTouch::build(&w, 4, 64);
    let mk = |contention| MachineConfig {
        contention,
        ..MachineConfig::with_cores(4)
    };
    let off = run_em2(mk(Contention::Off), &w, &p);
    let queued = Contention::Queued(QueuedParams::from_cost(&mk(Contention::Off).cost));
    let a = run_em2(mk(queued), &w, &p);
    let b = run_em2(mk(queued), &w, &p);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.flow, b.flow);
    assert_eq!(a.queue_link_wait_cycles, b.queue_link_wait_cycles);
    assert_eq!(a.queue_home_wait_cycles, b.queue_home_wait_cycles);
    assert!(a.cycles >= off.cycles, "{} < {}", a.cycles, off.cycles);
    assert!(a.violations.is_empty(), "{:?}", a.violations);

    let msi_off = run_msi(MsiConfig::with_cores(4), &w, &p);
    let msi_q = run_msi(
        MsiConfig {
            contention: queued,
            ..MsiConfig::with_cores(4)
        },
        &w,
        &p,
    );
    assert!(msi_q.cycles >= msi_off.cycles);
    assert!(msi_q.violations.is_empty(), "{:?}", msi_q.violations);
}

#[test]
fn generators_are_reproducible_across_calls() {
    assert_eq!(
        OceanConfig::small().generate(),
        OceanConfig::small().generate()
    );
    assert_eq!(
        SynthConfig::small().generate(),
        SynthConfig::small().generate()
    );
}
