//! Cross-crate determinism: identical configurations must produce
//! bit-identical results across every machine model — a prerequisite
//! for all the experiment tables.

use em2::coherence::{run_msi, MsiConfig};
use em2::core::machine::{EvictionPolicy, MachineConfig};
use em2::core::sim::{run_em2, run_em2ra};
use em2::core::HistoryPredictor;
use em2::placement::FirstTouch;
use em2::trace::gen::{micro, ocean::OceanConfig, synth::SynthConfig};

#[test]
fn em2_runs_are_reproducible() {
    let w = OceanConfig::small().generate();
    let p = FirstTouch::build(&w, 4, 64);
    let a = run_em2(MachineConfig::with_cores(4), &w, &p);
    let b = run_em2(MachineConfig::with_cores(4), &w, &p);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.flow, b.flow);
    assert_eq!(a.run_lengths, b.run_lengths);
    assert_eq!(a.traffic, b.traffic);
    assert_eq!(a.context_bits_sent, b.context_bits_sent);
    assert_eq!(a.network_cycles, b.network_cycles);
}

#[test]
fn random_eviction_is_seeded() {
    let w = micro::hotspot(8, 8, 400, 0.9, 1);
    let p = FirstTouch::build(&w, 8, 64);
    let mk = || MachineConfig {
        guest_contexts: 1,
        eviction: EvictionPolicy::Random { seed: 99 },
        ..MachineConfig::with_cores(8)
    };
    let a = run_em2(mk(), &w, &p);
    let b = run_em2(mk(), &w, &p);
    assert_eq!(a.flow, b.flow);
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn learning_scheme_is_reproducible() {
    let w = SynthConfig::small().generate();
    let p = FirstTouch::build(&w, 4, 64);
    let run = || {
        run_em2ra(
            MachineConfig::with_cores(4),
            &w,
            &p,
            Box::new(HistoryPredictor::new(1.0, 0.5)),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.flow, b.flow);
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn msi_runs_are_reproducible() {
    let w = micro::uniform(4, 4, 500, 128, 0.4, 7);
    let p = FirstTouch::build(&w, 4, 64);
    let a = run_msi(MsiConfig::with_cores(4), &w, &p);
    let b = run_msi(MsiConfig::with_cores(4), &w, &p);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.total_flit_hops(), b.total_flit_hops());
    assert_eq!(a.invalidations, b.invalidations);
}

#[test]
fn generators_are_reproducible_across_calls() {
    assert_eq!(
        OceanConfig::small().generate(),
        OceanConfig::small().generate()
    );
    assert_eq!(
        SynthConfig::small().generate(),
        SynthConfig::small().generate()
    );
}
