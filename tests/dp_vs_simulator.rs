//! The §3 analytical model against the full simulator: the DP's
//! optimum must lower-bound the simulator's network cycles for *every*
//! decision scheme, and feeding the DP's own decision schedule back
//! into the simulator must reproduce the bound exactly (when no
//! evictions perturb the single-thread assumption).

use em2::core::decision::{
    AlwaysMigrate, AlwaysRemote, Decision, DecisionScheme, DistanceThreshold, OracleSchedule,
};
use em2::core::machine::MachineConfig;
use em2::core::sim::Simulator;
use em2::model::CostModel;
use em2::optimal::{migrate_ra, Choice};
use em2::placement::FirstTouch;
use em2::trace::gen::synth::SynthConfig;
use em2::trace::Workload;

fn machine(cores: usize) -> MachineConfig {
    // Plenty of guest contexts: no evictions, so the per-thread DP
    // model matches the machine exactly.
    MachineConfig {
        guest_contexts: 64,
        ..MachineConfig::with_cores(cores)
    }
}

fn workload() -> Workload {
    SynthConfig {
        threads: 8,
        cores: 16,
        accesses_per_thread: 1_000,
        ..SynthConfig::default()
    }
    .generate()
}

#[test]
fn dp_lower_bounds_every_scheme_in_simulation() {
    let w = workload();
    let p = FirstTouch::build(&w, 16, 64);
    let cost = CostModel::builder().cores(16).build();
    let (opt, _) = migrate_ra::workload_optimal(&w, &p, &cost);

    let schemes: Vec<Box<dyn DecisionScheme>> = vec![
        Box::new(AlwaysMigrate),
        Box::new(AlwaysRemote),
        Box::new(DistanceThreshold { max_hops: 3 }),
    ];
    for s in schemes {
        let name = s.name();
        let r = Simulator::new(machine(16), &w, &p, s).run();
        assert!(r.violations.is_empty(), "{name}: {:?}", r.violations);
        assert_eq!(
            r.flow.evictions, 0,
            "{name}: guest contexts sized to avoid evictions"
        );
        assert!(
            r.network_cycles >= opt,
            "{name}: simulator network cycles {} beat the DP bound {}",
            r.network_cycles,
            opt
        );
    }
}

#[test]
fn oracle_schedule_achieves_the_bound() {
    let w = workload();
    let p = FirstTouch::build(&w, 16, 64);
    let cost = CostModel::builder().cores(16).build();
    let (opt, per_thread) = migrate_ra::workload_optimal(&w, &p, &cost);

    // Convert each thread's optimal choice sequence into the decisions
    // the simulator will ask for (non-local accesses only).
    let schedule: Vec<Vec<Decision>> = per_thread
        .iter()
        .map(|o| {
            o.nonlocal_decisions()
                .into_iter()
                .map(|c| match c {
                    Choice::Migrate => Decision::Migrate,
                    Choice::Remote => Decision::Remote,
                    Choice::Local => unreachable!("filtered"),
                })
                .collect()
        })
        .collect();
    let r = Simulator::new(machine(16), &w, &p, Box::new(OracleSchedule::new(schedule))).run();
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(
        r.network_cycles, opt,
        "replaying the DP schedule must reproduce the DP cost exactly"
    );
}

#[test]
fn dp_on_ocean_beats_both_pure_machines() {
    let w = em2::trace::gen::ocean::OceanConfig::small().generate();
    let p = FirstTouch::build(&w, 4, 64);
    let cost = CostModel::builder().cores(4).build();
    let (opt, _) = migrate_ra::workload_optimal(&w, &p, &cost);

    let mig = Simulator::new(machine(4), &w, &p, Box::new(AlwaysMigrate)).run();
    let ra = Simulator::new(machine(4), &w, &p, Box::new(AlwaysRemote)).run();
    assert!(opt <= mig.network_cycles);
    assert!(opt <= ra.network_cycles);
    // Figure 2's bimodality means the optimum strictly beats both pure
    // strategies: neither all-migrate nor all-RA is right for OCEAN.
    assert!(
        opt < mig.network_cycles && opt < ra.network_cycles,
        "optimal {} vs migrate {} vs remote {}",
        opt,
        mig.network_cycles,
        ra.network_cycles
    );
}
