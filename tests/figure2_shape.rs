//! Figure 2's shape, asserted: about half of all non-native accesses
//! sit in run-length-1 runs, the rest in longer runs whose lengths
//! track the multigrid block sizes; and the simulator's online
//! histogram agrees exactly with the trace-level analysis.

use em2::core::machine::MachineConfig;
use em2::core::sim::run_em2;
use em2::placement::{run_length_analysis, FirstTouch};
use em2::trace::gen::ocean::OceanConfig;

fn quick_ocean() -> (em2::trace::Workload, FirstTouch) {
    let cfg = OceanConfig {
        interior: 128,
        threads: 16,
        cores: 16,
        iterations: 2,
        levels: 3,
        ..OceanConfig::default()
    };
    let w = cfg.generate();
    let p = FirstTouch::build(&w, 16, 64);
    (w, p)
}

#[test]
fn about_half_of_accesses_are_one_off() {
    let (w, p) = quick_ocean();
    let a = run_length_analysis(&w, &p, 60);
    let f = a.single_access_fraction();
    assert!(
        (0.35..=0.65).contains(&f),
        "paper: 'about half ... migrate after one memory reference'; got {f:.3}"
    );
}

#[test]
fn long_runs_follow_block_sizes() {
    // 128² interior / 4-wide thread grid → blocks 32, 16, 8 across the
    // three multigrid levels; the boundary-column reductions produce
    // runs of exactly those lengths, the ghost-row copies runs of the
    // chunk size (8).
    let (w, p) = quick_ocean();
    let a = run_length_analysis(&w, &p, 60);
    for len in [8u64, 16, 32] {
        assert!(
            a.histogram.count(len) > 0,
            "expected runs of length {len} from the multigrid structure"
        );
    }
    // And the mass between the peaks is tiny: the distribution is
    // genuinely bimodal-ish, not smeared.
    let at_peaks: u128 = [1u64, 8, 16, 32]
        .iter()
        .map(|&l| (l * a.histogram.count(l)) as u128)
        .sum();
    let frac = at_peaks as f64 / a.histogram.weighted_total() as f64;
    assert!(frac > 0.8, "peaks carry {frac:.2} of the mass");
}

#[test]
fn simulator_histogram_equals_trace_analysis() {
    let (w, p) = quick_ocean();
    let a = run_length_analysis(&w, &p, 60);
    let mut cfg = MachineConfig::with_cores(16);
    cfg.guest_contexts = 16; // suppress evictions: exact correspondence
    let r = run_em2(cfg, &w, &p);
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.run_lengths, a.histogram);
    assert_eq!(r.flow.migrations, a.migrations_pure_em2);
}

#[test]
fn every_non_native_access_is_in_exactly_one_run() {
    let (w, p) = quick_ocean();
    let a = run_length_analysis(&w, &p, 60);
    assert_eq!(a.histogram.weighted_total(), a.non_native_accesses as u128);
    assert_eq!(a.total_accesses as usize, w.total_accesses());
}

#[test]
fn better_placement_reduces_migration_pressure() {
    // Profile-majority placement can only improve (or match) the
    // non-native fraction relative to first-touch on this workload.
    let cfg = OceanConfig {
        interior: 64,
        threads: 4,
        cores: 4,
        iterations: 1,
        levels: 1,
        ..OceanConfig::small()
    };
    let w = cfg.generate();
    let ft = FirstTouch::build(&w, 4, 64);
    let pm = em2::placement::ProfileMajority::build(&w, 4, 64);
    let a_ft = run_length_analysis(&w, &ft, 60);
    let a_pm = run_length_analysis(&w, &pm, 60);
    assert!(
        a_pm.non_native_fraction() <= a_ft.non_native_fraction() + 1e-9,
        "profile-majority {} vs first-touch {}",
        a_pm.non_native_fraction(),
        a_ft.non_native_fraction()
    );
}
