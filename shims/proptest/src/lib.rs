//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build environment for this workspace has no crates.io access, so
//! this shim implements exactly the subset of the proptest API the
//! workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * integer / float range strategies (`0u64..100`, `-1e6f64..1e6`);
//! * [`any`]`::<T>()` for the primitive types and `Option<T>`;
//! * tuple strategies up to arity 4;
//! * [`prop::collection::vec`] with a length range or exact length;
//! * [`Strategy::prop_map`] and [`Strategy::prop_flat_map`], and
//!   [`Just`].
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test seed (the FNV-1a hash of the test name), and
//! there is **no shrinking** — a failure reports the case index and the
//! panic/assertion message only. That trade keeps the tests
//! reproducible and dependency-free; it does not change what they
//! accept.

use std::ops::Range;

/// Per-test configuration: how many random cases to run.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property-test case (what `prop_assert!` returns).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic splitmix64 generator used to drive strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed directly.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Deterministic per-test seed: FNV-1a over the test's name.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. The shim has no shrinking, so a strategy is just
/// a sampling function.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then a follow-up strategy from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the strategy type (compatibility with proptest chains).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy producing one constant value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, broad magnitude spread.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.next_u64() & 1 == 1 {
            Some(T::arbitrary(rng))
        } else {
            None
        }
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy: any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies (`prop::collection::vec`).
pub mod prop {
    /// See [`collection::vec`].
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// A length specification: exact or a half-open range.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec length range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end() + 1,
                }
            }
        }

        /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.hi - self.len.lo) as u64;
                let n = self.len.lo + rng.below(span) as usize;
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// A vector of values from `element`, length in `len`.
        pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                len: len.into(),
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                __l,
                __r
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a),
                stringify!($b),
                __l
            )));
        }
    }};
}

/// Declare property tests. Supports the standard proptest surface this
/// workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(128))]
///
///     #[test]
///     fn my_property(x in 0u64..100, ys in prop::collection::vec(any::<bool>(), 1..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&$strat, &mut __rng);)+
                    let __result = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case,
                            __cfg.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..10, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(any::<bool>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn exact_vec_length(v in prop::collection::vec(any::<u8>(), 7usize)) {
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn map_and_tuples(pair in (0u32..5, 0u32..5).prop_map(|(a, b)| (a, a + b)) ) {
            prop_assert!(pair.1 >= pair.0);
        }
    }
}
