//! Offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this shim keeps
//! the workspace's `benches/` targets compiling and runnable with the
//! API subset they use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId::new`],
//! [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Statistics are deliberately simple: after one warm-up iteration,
//! each benchmark runs `sample_size` timed iterations and prints the
//! minimum, mean, and maximum per-iteration wall time. There are no
//! plots, baselines, or outlier analysis — run the real criterion when
//! network access is available if you need those.

use std::fmt;
use std::time::{Duration, Instant};

/// Format a duration compactly (ns/µs/ms/s).
fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
        }
    }
}

/// A named benchmark id, optionally parameterized.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion-style.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id from a bare string.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("  {}/{label}: no samples", self.name);
            return;
        }
        let min = *b.samples.iter().min().expect("nonempty");
        let max = *b.samples.iter().max().expect("nonempty");
        let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
        println!(
            "  {}/{label}: min {} / mean {} / max {} over {} iters",
            self.name,
            fmt_dur(min),
            fmt_dur(mean),
            fmt_dur(max),
            b.samples.len()
        );
    }

    /// Run one benchmark closure.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        self.run(&id.label, &mut f);
        self
    }

    /// Run one benchmark closure with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(&id.label, &mut |b| f(b, input));
        self
    }

    /// End the group (printing already happened per-benchmark).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `sample_size` iterations of `f` (after one warm-up call).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        std::hint::black_box(f()); // warm-up
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        assert_eq!(runs, 4, "1 warm-up + 3 timed");
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("dp", 64);
        assert_eq!(id.label, "dp/64");
    }
}
