//! Quickstart: simulate a 16-core EM² machine on a ping-pong workload.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use em2::core::machine::MachineConfig;
use em2::core::sim::{run_em2, run_em2ra};
use em2::core::AlwaysRemote;
use em2::engine::Contention;
use em2::placement::FirstTouch;
use em2::trace::gen::micro;

fn main() {
    // 1. A workload: 4 thread pairs ping-ponging shared words, on a
    //    16-core machine (threads 0..8 on cores 0..8).
    let workload = micro::pingpong(4, 16, 100);

    // 2. The paper's placement: first-touch at cache-line granularity.
    let placement = FirstTouch::build(&workload, 16, 64);

    // 3. A machine: 16 cores, 16KB L1 + 64KB L2 per core, 2 guest
    //    contexts, the default mesh cost model. Both simulators run on
    //    the shared `em2-engine` event kernel; `Contention::Off` (the
    //    default) keeps the paper's closed-form timing — see
    //    `examples/contention.rs` for the queued alternative.
    let config = MachineConfig {
        contention: Contention::Off,
        ..MachineConfig::with_cores(16)
    };

    // 4. Pure EM²: every non-local access migrates the thread.
    let em2 = run_em2(config.clone(), &workload, &placement);
    println!("{em2}\n");

    // 5. The same workload under a remote-access-only machine.
    let ra = run_em2ra(config, &workload, &placement, Box::new(AlwaysRemote));
    println!("{ra}\n");

    println!(
        "EM² shipped {} context bits; the remote-access machine shipped {} — \
         the gap is the paper's motivation for shrinking migration contexts.",
        em2.context_bits_sent, ra.context_bits_sent
    );
    assert!(em2.violations.is_empty() && ra.violations.is_empty());
}
