//! One workload under `Contention::Off` vs `Contention::Queued`.
//!
//! The paper's closed-form timing (and the DP bound built on it)
//! assumes an uncontended network and infinitely-ported caches. The
//! engine's opt-in contention layer prices the two queueing effects
//! that assumption hides: FIFO service at home cores and per-link
//! bandwidth. A hotspot workload — every thread hammering one core's
//! data — shows them at their worst.
//!
//! ```text
//! cargo run --release --example contention
//! ```

use em2::core::machine::MachineConfig;
use em2::core::sim::run_em2;
use em2::engine::{Contention, QueuedParams};
use em2::placement::FirstTouch;
use em2::trace::gen::micro;

fn main() {
    // 16 threads, 90% of accesses to core 3's data.
    let workload = micro::hotspot(16, 16, 1_000, 0.9, 42);
    let placement = FirstTouch::build(&workload, 16, 64);

    let mk = |contention| MachineConfig {
        contention,
        ..MachineConfig::with_cores(16)
    };

    // The closed form: migrations and remote accesses never queue.
    let off = run_em2(mk(Contention::Off), &workload, &placement);

    // Queued: 1 service port per home core (busy one L2 hit per
    // request) and 1 channel per mesh link, both derived from the
    // same CostModel the closed form uses.
    let params = QueuedParams::from_cost(&mk(Contention::Off).cost);
    let queued = run_em2(mk(Contention::Queued(params)), &workload, &placement);
    assert!(off.violations.is_empty() && queued.violations.is_empty());

    println!("{off}\n");
    println!("{queued}\n");

    println!(
        "hotspot under contention: {} -> {} cycles ({:.2}x slower)",
        off.cycles,
        queued.cycles,
        queued.cycles as f64 / off.cycles as f64
    );
    println!(
        "  time lost queueing: {} cycles at links, {} cycles in home service queues",
        queued.queue_link_wait_cycles, queued.queue_home_wait_cycles
    );
    println!(
        "\nThe flow counts are workload properties and barely move; the\n\
         *cycles* move a lot — exactly the gap between the paper's §3\n\
         closed-form model and a machine with finite bandwidth. E10\n\
         sweeps this across workloads and all three machines."
    );
    assert!(queued.cycles >= off.cycles);
}
