//! Regenerate Figure 2 of the paper: the run-length histogram of
//! accesses to non-native memory for an OCEAN-like workload on a
//! 64-core EM² machine with first-touch placement.
//!
//! ```text
//! cargo run --release --example ocean_runlengths [--quick]
//! ```

use em2::placement::{run_length_analysis, FirstTouch};
use em2::trace::gen::ocean::OceanConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        OceanConfig {
            interior: 128,
            threads: 16,
            cores: 16,
            iterations: 2,
            ..OceanConfig::default()
        }
    } else {
        // The paper's scale: 64 threads on 64 cores.
        OceanConfig::default()
    };
    println!(
        "generating ocean: {}² grid, {} threads, {} V-cycles…",
        cfg.interior, cfg.threads, cfg.iterations
    );
    let threads = cfg.threads;
    let workload = cfg.generate();
    println!("  {} memory accesses", workload.total_accesses());

    let placement = FirstTouch::build(&workload, threads, 64);
    let analysis = run_length_analysis(&workload, &placement, 60);

    println!(
        "\nnon-native accesses: {} of {} ({:.1}%)",
        analysis.non_native_accesses,
        analysis.total_accesses,
        100.0 * analysis.non_native_fraction()
    );
    println!(
        "single-access fraction: {:.3}  (paper: \"about half of the accesses\n\
         migrate after one memory reference\")",
        analysis.single_access_fraction()
    );
    println!(
        "mean non-native run length: {:.2}\n",
        analysis.mean_run_length()
    );
    println!("# of accesses to memory cached at non-native cores, by run length:");
    print!("{}", analysis.histogram.ascii_chart_weighted(1, 40, 50));
}
