//! The §3 analytical model in action: compute the *optimal*
//! migrate-vs-remote-access decision sequence for a workload with the
//! paper's dynamic program, then measure how close simple
//! hardware-implementable schemes come.
//!
//! ```text
//! cargo run --release --example migrate_vs_ra
//! ```

use em2::model::CostModel;
use em2::optimal::{migrate_ra, Choice, CostTrace};
use em2::placement::FirstTouch;
use em2::trace::gen::synth::SynthConfig;

fn main() {
    // A 16-core synthetic workload shaped like Figure 2: remote runs
    // are a mix of one-off accesses and longer bursts.
    let workload = SynthConfig {
        threads: 16,
        cores: 16,
        accesses_per_thread: 5_000,
        single_fraction: 0.5,
        ..SynthConfig::default()
    }
    .generate();
    let placement = FirstTouch::build(&workload, 16, 64);
    let cost = CostModel::builder().cores(16).build();

    // Per-thread optimum via the paper's DP (O(N·P)).
    let (optimal_total, per_thread) = migrate_ra::workload_optimal(&workload, &placement, &cost);
    println!("DP optimal network cost: {optimal_total} cycles");
    let mig: usize = per_thread.iter().map(|o| o.migrations()).sum();
    let ra: usize = per_thread.iter().map(|o| o.remote_accesses()).sum();
    println!("  optimal mix: {mig} migrations, {ra} remote accesses\n");

    // Fixed schemes, evaluated with the O(N) replay.
    for (name, choice) in [
        ("always-migrate", Choice::Migrate),
        ("always-remote", Choice::Remote),
    ] {
        let total: u64 = workload
            .threads
            .iter()
            .map(|t| {
                let ct = CostTrace::from_thread(t, &placement);
                migrate_ra::evaluate(&ct, &cost, |_, _, _, _| choice)
            })
            .sum();
        println!(
            "{name:>16}: {total} cycles  ({:.0}% of optimal)",
            100.0 * total as f64 / optimal_total as f64
        );
    }

    // A distance heuristic: migrate only to nearby homes.
    for hops in [1u64, 2, 4, 14] {
        let total: u64 = workload
            .threads
            .iter()
            .map(|t| {
                let ct = CostTrace::from_thread(t, &placement);
                migrate_ra::evaluate(&ct, &cost, |_, at, home, _| {
                    if cost.hops(at, home) <= hops {
                        Choice::Migrate
                    } else {
                        Choice::Remote
                    }
                })
            })
            .sum();
        println!(
            "   distance<={hops:<2}   : {total} cycles  ({:.0}% of optimal)",
            100.0 * total as f64 / optimal_total as f64
        );
    }
    println!("\nThe gap to 100% is what better decision schemes — the paper's\nproposed future work — would close.");
}
