//! EM² vs directory-MSI on the same workload, caches, and cost model —
//! the §2 comparison: replication and off-chip misses vs migration
//! traffic.
//!
//! ```text
//! cargo run --release --example coherence_compare
//! ```

use em2::coherence::{run_msi, MsiConfig};
use em2::core::machine::MachineConfig;
use em2::core::sim::run_em2;
use em2::engine::Contention;
use em2::placement::FirstTouch;
use em2::trace::gen::micro;

fn main() {
    // Uniform random sharing over 1024 lines: the workload where
    // replication hurts a directory machine most.
    let workload = micro::uniform(16, 16, 2_000, 1024, 0.3, 0xC0FFEE);
    let placement = FirstTouch::build(&workload, 16, 64);

    // Both machines run on the shared `em2-engine` kernel with the
    // same closed-form timing (Contention::Off is the default for
    // either config; spelled out here for the comparison's sake).
    let em2 = run_em2(
        MachineConfig {
            contention: Contention::Off,
            ..MachineConfig::with_cores(16)
        },
        &workload,
        &placement,
    );
    let msi = run_msi(
        MsiConfig {
            contention: Contention::Off,
            ..MsiConfig::with_cores(16)
        },
        &workload,
        &placement,
    );
    assert!(em2.violations.is_empty() && msi.violations.is_empty());

    println!("{em2}\n");
    println!("{msi}\n");

    println!("side by side:");
    println!("                        EM2          directory-MSI");
    println!(
        "  cycles           {:>10}       {:>10}",
        em2.cycles, msi.cycles
    );
    println!(
        "  AMAT             {:>10.1}       {:>10.1}",
        em2.amat(),
        msi.amat()
    );
    println!(
        "  traffic (f-hops) {:>10}       {:>10}",
        em2.traffic.total(),
        msi.total_flit_hops()
    );
    println!(
        "  off-chip misses  {:>10}       {:>10}",
        em2.caches.l2_misses, msi.caches.l2_misses
    );
    println!(
        "  extra storage    {:>10}       {:>10}",
        "0 (no dir)",
        format!("{} Kbit dir", msi.directory_bits / 1024)
    );
    println!(
        "\nEM² caches exactly one copy of every line (peak replication 1.0 by\n\
         construction); the MSI machine peaked at {:.2} copies per line and\n\
         pays directory storage — the paper's §2 capacity argument.",
        msi.peak_replication
    );
}
