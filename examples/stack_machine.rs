//! The §4 stack-machine EM²: assemble and run a stack program, extract
//! its migration visits, and compare migrated-context policies — the
//! full register file vs fixed stack depths vs the optimal-depth DP.
//!
//! ```text
//! cargo run --release --example stack_machine
//! ```

use em2::model::{CoreId, CostModel};
use em2::optimal::stack_depth::{self, DepthChoice};
use em2::placement::Striped;
use em2::stack::{assemble, extract_visits, program, SparseMemory, StackMachine};

fn main() {
    // 1. The ISA is a classic two-stack machine; here is a program
    //    assembled from text.
    let doubler = assemble(
        r"
            lit 21
            call double
            halt
        double:
            dup
            add
            ret
        ",
    )
    .unwrap();
    let mut m = StackMachine::new(doubler);
    let mut mem = SparseMemory::new();
    m.run(&mut mem, 1_000).unwrap();
    println!("double(21) on the stack machine = {:?}\n", m.expr);

    // 2. A real kernel: dot product over two 1024-word arrays striped
    //    across 16 cores — every few iterations the loop crosses homes.
    let n = 1024u32;
    let kernel = program::dot_product(0x0000, 0x4_0100, n, 0x8_0000);
    let mut mem = SparseMemory::new();
    mem.load_words(0x0000, &(1..=n).collect::<Vec<_>>());
    mem.load_words(0x4_0100, &vec![3u32; n as usize]);
    let placement = Striped::new(16, 256);
    let visits = extract_visits(
        StackMachine::new(kernel.program.clone()),
        &mut mem,
        &placement,
        CoreId(0),
        100_000_000,
    )
    .unwrap();
    println!(
        "dot_product: {} instructions, {} accesses, {} visits ({} remote), peak stack depth {}",
        visits.total_steps,
        visits.total_accesses,
        visits.visits.len(),
        visits.remote_visits(),
        visits.peak_depth
    );

    // 3. Price the §4 policies.
    let cost = CostModel::builder().cores(16).build();
    let params = DepthChoice::default();
    let (reg_cost, reg_bits) =
        stack_depth::evaluate_register_machine(visits.start, &visits.visits, &cost);
    println!("\npolicy                 network-cost  bits-shipped");
    println!("register-EM2 (1120b)   {reg_cost:>12}  {reg_bits:>12}");
    for d in [2u32, 4, 8, 16] {
        let (c, bits) =
            stack_depth::evaluate_fixed_depth(visits.start, &visits.visits, d, &params, &cost);
        println!("stack depth={d:<2}         {c:>12}  {bits:>12}");
    }
    let opt = stack_depth::stack_optimal(visits.start, &visits.visits, &params, &cost);
    println!(
        "optimal depth (DP)     {:>12}  {:>12}",
        opt.cost, opt.bits_shipped
    );
    println!(
        "\nThe optimal-depth DP is the paper's §4 analogue of the §3\n\
         migrate-vs-RA program: same states, wider choice set."
    );
}
