//! A benchmark-grade sharded key-value service on the **executable**
//! `em2-rt` runtime: the multiplexed executor serves KV traffic, and
//! every non-local operation either migrates the request task to the
//! key's home shard or performs a word-granular remote access —
//! decided per access by the same `em2-core` decision schemes the
//! simulator uses.
//!
//! Two measurements per scheme:
//!
//! 1. **Closed-loop clients** — 16 long-lived clients issue mixed
//!    reads/writes as fast as the runtime retires them, each verifying
//!    read-your-writes on its own key range; the table shows how the
//!    scheme splits the same workload between migration and remote
//!    access, and the throughput it gets.
//! 2. **Open-loop serving** — a fixed-rate injector submits
//!    independent KV request *tasks* at 50% of the scheme's measured
//!    capacity; every request is stamped with its intended arrival
//!    time, so the p50/p95/p99 latencies include queueing delay even
//!    when the injector falls behind (no coordinated omission). The
//!    same panel is recorded in `BENCH.json` under `runtime.latency`.
//!
//! ```text
//! cargo run --release --example runtime_kv
//! ```
//!
//! `--stats-interval <ms>` (in either mode) adds a live one-line
//! metrics summary per tick — requests/s, task-latency p50/p99, guest
//! occupancy, egress queue depth — sampled from the `em2-obs` plane,
//! which the flag forces on programmatically.
//!
//! **Cluster mode** (`--node <id> --cluster <spec>`) launches the same
//! KV service as a *real multi-process distributed DSM* over `em2-net`:
//! every process owns a contiguous shard range, clients migrate (or
//! remote-access) across address spaces, and each client still
//! verifies read-your-writes — now across processes. Run each node in
//! its own terminal with the same spec:
//!
//! ```text
//! cargo run --release --example runtime_kv -- \
//!     --node 0 --cluster uds:/tmp/em2-kv.sock,nodes=2,shards=16 &
//! cargo run --release --example runtime_kv -- \
//!     --node 1 --cluster uds:/tmp/em2-kv.sock,nodes=2,shards=16
//! ```
//!
//! (`tcp:127.0.0.1:7600,nodes=2,shards=16` works across hosts.)

use em2::core::decision::DecisionScheme;
use em2::model::{Addr, CoreId, DetRng, ThreadId};
use em2::net::{ClusterSpec, NodeRuntime};
use em2::obs::{NodeObs, ObsConfig};
use em2::placement::{Placement, Striped};
use em2::rt::{Op, RtConfig, RtReport, Runtime, Task, TaskRegistry, TaskSpec};
use em2_bench::serving::{kv_open_loop, scheme_panel};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: usize = 16;
const CLIENTS: usize = 16;
const OPS_PER_CLIENT: usize = 4_000;
/// Keys per client's private range.
const OWN_KEYS: u64 = 64;
/// Hot keys shared by every client.
const HOT_KEYS: u64 = 16;
/// Open-loop requests per scheme.
const REQUESTS: u64 = 4_000;

fn addr_of(key: u64) -> Addr {
    Addr(key * 8)
}

/// What the client is in the middle of.
enum KvState {
    /// Free to issue the next operation.
    Idle,
    /// A put to an owned key completed; read it back next.
    ReadBack { key: u64, want: u64 },
    /// The read-back is in flight; verify its reply.
    Verify { want: u64 },
}

/// One closed-loop KV client: a migratable continuation issuing gets
/// and puts.
struct KvClient {
    rng: DetRng,
    own_base: u64,
    version: u64,
    ops_left: usize,
    state: KvState,
    verified: u64,
}

impl KvClient {
    /// Wire kind tag (1 and 2 are taken by `TraceTask`/`KvRequest`).
    const WIRE_KIND: u32 = 3;

    fn new(id: usize) -> Self {
        KvClient {
            rng: DetRng::new(0x4b56).fork(id as u64),
            own_base: HOT_KEYS + id as u64 * OWN_KEYS,
            version: 0,
            ops_left: OPS_PER_CLIENT,
            state: KvState::Idle,
            verified: 0,
        }
    }

    /// Rebuild a migrated-in client from its context bytes (the
    /// receiving half of a cross-process migration).
    fn from_context_bytes(ctx: &[u8]) -> Result<Self, String> {
        (|| {
            let mut r = em2::model::bytes::Cursor::new(ctx);
            let rng = DetRng::from_state([r.u64()?, r.u64()?, r.u64()?, r.u64()?]);
            let own_base = r.u64()?;
            let version = r.u64()?;
            let ops_left = r.u64()? as usize;
            let verified = r.u64()?;
            let (tag, a, v) = (r.u8()?, r.u64()?, r.u64()?);
            r.finish()?;
            let state = match tag {
                0 => KvState::Idle,
                1 => KvState::ReadBack { key: a, want: v },
                2 => KvState::Verify { want: v },
                tag => {
                    return Err(em2::model::bytes::CodecError::BadTag {
                        what: "kv client state",
                        tag,
                    })
                }
            };
            Ok(KvClient {
                rng,
                own_base,
                version,
                ops_left,
                verified,
                state,
            })
        })()
        .map_err(|e: em2::model::bytes::CodecError| format!("kv client context: {e}"))
    }

    fn registry() -> TaskRegistry {
        let mut r = TaskRegistry::new();
        r.register(KvClient::WIRE_KIND, |ctx| {
            KvClient::from_context_bytes(ctx).map(|t| Box::new(t) as Box<dyn Task>)
        });
        r
    }
}

impl Task for KvClient {
    fn resume(&mut self, reply: Option<u64>) -> Op {
        match std::mem::replace(&mut self.state, KvState::Idle) {
            KvState::Verify { want } => {
                let got = reply.expect("a read returns a value");
                assert_eq!(got, want, "read-your-writes violated across shards");
                self.verified += 1;
            }
            KvState::ReadBack { key, want } => {
                self.state = KvState::Verify { want };
                return Op::Read(addr_of(key));
            }
            KvState::Idle => {}
        }
        if self.ops_left == 0 {
            assert!(self.verified > 0, "a client must verify some writes");
            return Op::Done;
        }
        self.ops_left -= 1;
        match self.rng.below(100) {
            // put an owned key, then verify the round trip
            0..=39 => {
                let key = self.own_base + self.rng.below(OWN_KEYS);
                self.version += 1;
                let value = self.version ^ (key << 20);
                self.state = KvState::ReadBack { key, want: value };
                Op::Write(addr_of(key), value)
            }
            // get a hot shared key
            40..=79 => Op::Read(addr_of(self.rng.below(HOT_KEYS))),
            // put a hot shared key
            _ => {
                let key = self.rng.below(HOT_KEYS);
                Op::Write(addr_of(key), self.version)
            }
        }
    }

    fn context_bytes(&self) -> Vec<u8> {
        // The client's live registers: version, ops_left, verified,
        // state tag + operands, and the RNG state — 81 bytes, the
        // "small serialized context" migrations actually ship.
        let mut b = Vec::with_capacity(81);
        for w in self.rng.state() {
            b.extend_from_slice(&w.to_le_bytes());
        }
        b.extend_from_slice(&self.own_base.to_le_bytes());
        b.extend_from_slice(&self.version.to_le_bytes());
        b.extend_from_slice(&(self.ops_left as u64).to_le_bytes());
        b.extend_from_slice(&self.verified.to_le_bytes());
        let (tag, a, v): (u8, u64, u64) = match self.state {
            KvState::Idle => (0, 0, 0),
            KvState::ReadBack { key, want } => (1, key, want),
            KvState::Verify { want } => (2, 0, want),
        };
        b.push(tag);
        b.extend_from_slice(&a.to_le_bytes());
        b.extend_from_slice(&v.to_le_bytes());
        debug_assert_eq!(b.len() as u64, self.context_len());
        b
    }

    fn context_len(&self) -> u64 {
        81
    }

    fn wire_kind(&self) -> Option<u32> {
        Some(KvClient::WIRE_KIND)
    }
}

/// Live metrics printer behind `--stats-interval <ms>`: a thread that
/// samples the obs registry every tick (relaxed atomic reads; it never
/// locks the runtime) and prints one summary line — requests retired
/// per second over the window, cumulative task-latency p50/p99 bounds,
/// current guest-pool occupancy, current egress queue depth, the top-3
/// hot home shards by attributed placement cost, and the current
/// directory epoch. Dropping the ticker stops the thread.
struct StatsTicker {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl StatsTicker {
    fn spawn(obs: Arc<NodeObs>, interval_ms: u64) -> StatsTicker {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let (mut last_retired, mut last_at) = (0u64, Instant::now());
            while !flag.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(interval_ms));
                let s = obs.snapshot();
                let now = Instant::now();
                let dt = now.duration_since(last_at).as_secs_f64();
                let rps = (s.retired.saturating_sub(last_retired)) as f64 / dt.max(1e-9);
                let h = &s.task_latency_ns;
                let heat: String = obs
                    .placement_heat(3)
                    .iter()
                    .map(|(shard, cost)| format!(" s{shard}:{cost}"))
                    .collect();
                eprintln!(
                    "[obs] {rps:>9.0} req/s | task p50 {:>7.1}us p99 {:>8.1}us | \
                     guests {:>2} | egress {:>3} | heat{} | epoch {}",
                    h.quantile(0.50) as f64 / 1e3,
                    h.quantile(0.99) as f64 / 1e3,
                    s.guest_occupancy,
                    s.egress_depth,
                    if heat.is_empty() { " -" } else { &heat },
                    s.dir_epoch,
                );
                (last_retired, last_at) = (s.retired, now);
            }
        });
        StatsTicker {
            stop,
            thread: Some(thread),
        }
    }
}

impl Drop for StatsTicker {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The example's `RtConfig`: `--stats-interval` forces the obs plane
/// on programmatically (no env var involved) so the ticker has a
/// registry to sample.
fn kv_config(stats_ms: Option<u64>) -> RtConfig {
    let mut cfg = RtConfig::with_shards(SHARDS);
    if stats_ms.is_some() {
        cfg.obs = Some(ObsConfig::on());
    }
    cfg
}

fn run_closed_loop(
    scheme_factory: fn() -> Box<dyn DecisionScheme>,
    stats_ms: Option<u64>,
) -> RtReport {
    let tasks: Vec<TaskSpec> = (0..CLIENTS)
        .map(|i| {
            TaskSpec::new(
                Box::new(KvClient::new(i)) as Box<dyn Task>,
                em2::model::CoreId::from(i % SHARDS),
            )
        })
        .collect();
    let placement: Arc<dyn Placement> = Arc::new(Striped::new(SHARDS, 64));
    let mut rt = Runtime::start(
        kv_config(stats_ms),
        "kv-mixed",
        placement,
        scheme_factory,
        Vec::new(),
    );
    let _ticker = stats_ms.map(|ms| StatsTicker::spawn(rt.obs().expect("obs forced on"), ms));
    for spec in tasks {
        rt.submit(spec);
    }
    rt.finish()
}

/// One scheme's closed-loop run as one node of a multi-process
/// cluster: this process submits the clients native to its shard
/// range; the rest of the traffic arrives over the wire.
fn run_closed_loop_cluster(
    spec: &ClusterSpec,
    node: usize,
    scheme_factory: fn() -> Box<dyn DecisionScheme>,
    stats_ms: Option<u64>,
) -> em2::net::NetReport {
    let placement: Arc<dyn Placement> = Arc::new(Striped::new(SHARDS, 64));
    let mut nrt = NodeRuntime::start(
        spec.clone(),
        node,
        kv_config(stats_ms),
        "kv-mixed",
        placement,
        KvClient::registry(),
        scheme_factory,
        Vec::new(),
    )
    .expect("join the cluster (is every node running with the same --cluster spec?)");
    let _ticker = stats_ms.map(|ms| StatsTicker::spawn(nrt.obs().expect("obs forced on"), ms));
    let (first, count) = spec.span(node);
    for i in 0..CLIENTS {
        let native = i % SHARDS;
        if native >= first && native < first + count {
            nrt.submit(
                TaskSpec::new(
                    Box::new(KvClient::new(i)) as Box<dyn Task>,
                    CoreId::from(native),
                ),
                ThreadId(i as u32),
            );
        }
    }
    nrt.finish()
        .expect("cluster run failed (a peer died or timed out)")
}

/// The multi-process service: each node runs the scheme panel in
/// lockstep (same order, fresh cluster per scheme) and prints its
/// local slice of the counters plus the wire telemetry.
fn main_cluster(spec: ClusterSpec, node: usize, stats_ms: Option<u64>) {
    if node >= spec.num_nodes() {
        eprintln!(
            "--node {node} is not in a {}-node cluster",
            spec.num_nodes()
        );
        std::process::exit(2);
    }
    assert_eq!(
        spec.total_shards, SHARDS,
        "this service is built for {SHARDS} shards; pass shards={SHARDS} in --cluster"
    );
    let (first, count) = spec.span(node);
    println!(
        "distributed KV service on em2-net: node {node}/{} over {}, owning shards {first}..{}",
        spec.num_nodes(),
        spec.kind.name(),
        first + count
    );
    println!(
        "{CLIENTS} clients x {OPS_PER_CLIENT} ops cluster-wide; every client verifies \
         read-your-writes across process boundaries\n"
    );
    println!(
        "{:<18} {:>10} {:>9} {:>10} {:>12} {:>12} {:>9}",
        "scheme", "migrations", "RA", "local", "x-node ctxs", "wire bytes", "Mops/s"
    );
    for factory in scheme_panel() {
        let r = run_closed_loop_cluster(&spec, node, factory, stats_ms);
        println!(
            "{:<18} {:>10} {:>9} {:>10} {:>12} {:>12} {:>9.2}",
            r.rt.scheme,
            r.rt.flow.migrations,
            r.rt.flow.remote_reads + r.rt.flow.remote_writes,
            r.rt.flow.local_accesses,
            r.wire.arrives_tx,
            r.wire.bytes_tx,
            r.rt.ops_per_sec() / 1e6,
        );
    }
    println!(
        "\ncounters above are this node's local slice (each access executes on exactly one \
         node); E12 pins the cluster-wide sums bit-equal to the single-process run"
    );
}

/// Remove `name <value>` from `args`, returning the value.
fn take_value(args: &mut Vec<String>, name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    if i + 1 >= args.len() {
        eprintln!("{name} takes a value");
        std::process::exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let stats_ms: Option<u64> = take_value(&mut args, "--stats-interval").map(|v| {
        let ms = v.parse().expect("--stats-interval takes milliseconds");
        assert!(ms > 0, "--stats-interval must be positive");
        ms
    });
    let cluster = take_value(&mut args, "--cluster");
    let node = take_value(&mut args, "--node");
    if !args.is_empty() {
        eprintln!(
            "usage: runtime_kv [--stats-interval <ms>] \
             [--node <id> --cluster <kind>:<base>,nodes=<N>,shards=16]"
        );
        std::process::exit(2);
    }
    if let Some(cluster) = cluster {
        let node: usize = node
            .expect("--cluster requires --node <id>")
            .parse()
            .expect("--node takes a node id");
        let spec = ClusterSpec::parse(&cluster).unwrap_or_else(|e| {
            eprintln!("bad --cluster spec: {e}");
            std::process::exit(2);
        });
        main_cluster(spec, node, stats_ms);
        return;
    }

    println!(
        "sharded KV service on em2-rt: {SHARDS} shards on the multiplexed executor, \
         {CLIENTS} clients x {OPS_PER_CLIENT} ops"
    );
    println!("(8-byte values, 64-byte-line striped placement, 2 guest contexts per shard)\n");

    println!("== closed-loop clients (verified read-your-writes) ==");
    println!(
        "{:<18} {:>10} {:>9} {:>9} {:>10} {:>12} {:>9}",
        "scheme", "migrations", "RA", "evictions", "local", "ctx bytes", "Mops/s"
    );
    for factory in scheme_panel() {
        let r = run_closed_loop(factory, stats_ms);
        println!(
            "{:<18} {:>10} {:>9} {:>9} {:>10} {:>12} {:>9.2}",
            r.scheme,
            r.flow.migrations,
            r.flow.remote_reads + r.flow.remote_writes,
            r.flow.evictions,
            r.flow.local_accesses,
            r.context_bytes_sent,
            r.ops_per_sec() / 1e6,
        );
    }
    println!("\nevery client verified read-your-writes on its own key range\n");

    println!("== open-loop serving ({REQUESTS} requests/scheme @ 50% of measured capacity) ==");
    println!(
        "{:<18} {:>10} {:>10} {:>9} {:>9} {:>9} {:>10}",
        "scheme", "offered/s", "served/s", "p50 us", "p95 us", "p99 us", "max us"
    );
    for factory in scheme_panel() {
        let l = kv_open_loop(SHARDS, REQUESTS, 0.5, factory);
        println!(
            "{:<18} {:>10.0} {:>10.0} {:>9.1} {:>9.1} {:>9.1} {:>10.1}",
            l.scheme, l.offered_rps, l.achieved_rps, l.p50_us, l.p95_us, l.p99_us, l.max_us
        );
    }
    println!(
        "\nlatency measured from each request's intended arrival instant \
         (queueing included; no coordinated omission)"
    );
}
